"""The runtime PRAM race sanitizer (docs/static_analysis.md).

Three obligations:

* **Clean code is clean** — replaying every golden parity fixture (the
  full decomposition + BFS matrix) under an armed sanitizer reports
  zero races, on both execution backends.
* **Injected faults are caught** — a ``cas_flip`` surfaces as a
  cas-order race and a ``label_corrupt`` as an unsanctioned write; the
  cross-validation the fault framework provides.
* The primitive checks (duplicate claims, atomic/plain mixing, halt
  semantics) work in isolation.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.decomp import DECOMP_VARIANTS
from repro.engine.backend import use_backend
from repro.errors import SanitizerError
from repro.experiments.harness import profile_run
from repro.graphs import disjoint_union_edges, line_graph
from repro.pram.sanitizer import PramSanitizer, active_sanitizer, sanitizing
from repro.resilience import parse_fault_plan

from tests.conftest import _zoo
from tests.golden.generate_decomp_parity import capture_bfs, capture_one

BACKENDS = ["reference", "fast"]

FIXTURE = os.path.join(os.path.dirname(__file__), "golden", "decomp_parity.json")

with open(FIXTURE) as _f:
    _GOLD = json.load(_f)

_DECOMP_KEYS = sorted(k for k in _GOLD if not k.startswith("bfs/"))
_BFS_KEYS = sorted(k for k in _GOLD if k.startswith("bfs/"))


@pytest.fixture(scope="module")
def zoo():
    return _zoo()


class TestGoldenFixturesRaceFree:
    """Every pinned run is race-free under the sanitizer, both backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("key", _DECOMP_KEYS)
    def test_decomp_fixture_clean(self, key, backend, zoo):
        gname, variant, beta_s, seed_s = key.split("/")
        beta = float(beta_s.split("=")[1])
        seed = int(seed_s.split("=")[1])
        with use_backend(backend), sanitizing() as sanitizer:
            capture_one(DECOMP_VARIANTS[variant], zoo[gname], beta, seed)
        assert sanitizer.races == []
        assert sanitizer.rounds_checked > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("key", _BFS_KEYS)
    def test_bfs_fixture_clean(self, key, backend, zoo):
        gname = key.split("/")[1]
        with use_backend(backend), sanitizing() as sanitizer:
            capture_bfs(zoo[gname])
        assert sanitizer.races == []


class TestFaultCrossValidation:
    """The sanitizer catches what the fault framework injects."""

    def test_cas_flip_detected_as_cas_order_race(self):
        plan = parse_fault_plan("cas_flip:p=1.0,max_fires=1000000", seed=0)
        with sanitizing(halt_on_race=False) as sanitizer:
            profile_run(
                "decomp-arb-CC",
                line_graph(200),
                verify=False,
                fault_plan=plan,
                seed=1,
            )
        assert plan.fired
        assert sanitizer.races
        assert {r.kind for r in sanitizer.races} == {"cas-order"}

    def test_label_corrupt_detected_as_unsanctioned_write(self):
        graph = disjoint_union_edges([line_graph(20), line_graph(20)])
        plan = parse_fault_plan("label_corrupt:vertex=3,label_from=30", seed=0)
        with sanitizing(halt_on_race=False) as sanitizer:
            profile_run(
                "decomp-arb-CC", graph, verify=False, fault_plan=plan, seed=1
            )
        assert plan.fired
        kinds = {r.kind for r in sanitizer.races}
        assert "unsanctioned-write" in kinds
        corrupted = [r for r in sanitizer.races if r.kind == "unsanctioned-write"]
        assert any(3 in r.indices for r in corrupted)

    def test_halt_mode_raises_on_injected_race(self):
        plan = parse_fault_plan("cas_flip:p=1.0,max_fires=1000000", seed=0)
        with pytest.raises(SanitizerError) as excinfo:
            with sanitizing():  # halt_on_race=True is the default
                profile_run(
                    "decomp-arb-CC",
                    line_graph(200),
                    verify=False,
                    fault_plan=plan,
                    seed=1,
                )
        assert "cas-order" in str(excinfo.value)
        assert excinfo.value.report is not None


class TestPrimitiveChecks:
    """Unit-level behavior of the sanitizer's check machinery."""

    def test_duplicate_declared_write_is_a_conflict(self):
        sanitizer = PramSanitizer(halt_on_race=False)
        labels = np.zeros(8, dtype=np.int64)
        sanitizer.open_run({"labels": labels})
        sanitizer.open_round(0)
        # Two concurrent claims on index 3 inside one declared batch:
        # NumPy keeps the last writer, the PRAM machine the first —
        # a real lost-update hazard.
        sanitizer.record_write(labels, np.array([1, 3, 3, 5]))
        labels[[1, 3, 5]] = 7
        sanitizer.close_round()
        sanitizer.close_run()
        assert [r.kind for r in sanitizer.races] == ["write-conflict"]
        assert 3 in sanitizer.races[0].indices

    def test_atomic_and_plain_write_mix_flagged(self):
        sanitizer = PramSanitizer(halt_on_race=False)
        labels = np.zeros(8, dtype=np.int64)
        sanitizer.open_run({"labels": labels})
        sanitizer.open_round(0)
        sanitizer.record_atomic(labels, np.array([2, 4]))
        sanitizer.record_write(labels, np.array([4, 6]))
        labels[[2, 4, 6]] = 1
        sanitizer.close_round()
        sanitizer.close_run()
        kinds = [r.kind for r in sanitizer.races]
        assert "atomic-mix" in kinds
        mix = next(r for r in sanitizer.races if r.kind == "atomic-mix")
        assert 4 in mix.indices

    def test_unsanctioned_mutation_of_registered_array(self):
        sanitizer = PramSanitizer(halt_on_race=False)
        labels = np.zeros(8, dtype=np.int64)
        sanitizer.open_run({"labels": labels})
        sanitizer.open_round(0)
        labels[5] = 99  # no record_write / sanction covers index 5
        sanitizer.close_round()
        sanitizer.close_run()
        assert [r.kind for r in sanitizer.races] == ["unsanctioned-write"]
        assert sanitizer.races[0].array == "labels"
        assert 5 in sanitizer.races[0].indices

    def test_sanctioned_winner_set_passes(self):
        sanitizer = PramSanitizer(halt_on_race=False)
        labels = np.zeros(8, dtype=np.int64)
        sanitizer.open_run({"labels": labels})
        sanitizer.open_round(0)
        sanitizer.sanction(np.array([1, 5]))
        labels[[1, 5]] = 3
        sanitizer.close_round()
        sanitizer.close_run()
        assert sanitizer.races == []

    def test_context_manager_installs_and_removes(self):
        assert active_sanitizer() is None
        with sanitizing() as sanitizer:
            assert active_sanitizer() is sanitizer
        assert active_sanitizer() is None

    def test_summary_mentions_counts(self):
        with sanitizing() as sanitizer:
            profile_run(
                "decomp-arb-CC", line_graph(50), verify=False, seed=1
            )
        text = sanitizer.summary()
        assert "0 race(s)" in text
        assert sanitizer.cas_checked > 0
