"""Unit tests for verification and statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    component_histogram,
    decomposition_stats,
    edge_decay_ratios,
    partition_radii,
)
from repro.analysis.verify import (
    ground_truth_labels,
    labelings_equivalent,
    verify_decomposition,
    verify_labeling,
)
from repro.connectivity import decomp_cc
from repro.connectivity.base import ConnectivityResult
from repro.decomp import decomp_arb
from repro.errors import VerificationError
from repro.graphs.generators import (
    clique,
    disjoint_union_edges,
    empty_graph,
    grid3d,
    line_graph,
    random_kregular,
    star_graph,
)


class TestGroundTruth:
    def test_single_component(self):
        labels = ground_truth_labels(clique(5))
        assert np.unique(labels).size == 1

    def test_multi_component(self):
        g = disjoint_union_edges([clique(3), line_graph(4), empty_graph(2)])
        labels = ground_truth_labels(g)
        assert np.unique(labels).size == 4

    def test_empty(self):
        assert ground_truth_labels(empty_graph(0)).size == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = random_kregular(300, 3, seed=9)
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        s, d = g.edge_array()
        G.add_edges_from(zip(s.tolist(), d.tolist()))
        num_cc = nx.number_connected_components(G)
        assert np.unique(ground_truth_labels(g)).size == num_cc


class TestLabelingsEquivalent:
    def test_renaming_invariant(self):
        assert labelings_equivalent(np.array([1, 1, 2]), np.array([7, 7, 0]))

    def test_different_partitions(self):
        assert not labelings_equivalent(np.array([0, 0, 1]), np.array([0, 1, 1]))

    def test_shape_mismatch(self):
        assert not labelings_equivalent(np.array([0]), np.array([0, 1]))


class TestVerifyLabeling:
    def test_accepts_correct(self):
        g = line_graph(10)
        verify_labeling(g, ground_truth_labels(g))

    def test_rejects_wrong_shape(self):
        with pytest.raises(VerificationError, match="shape"):
            verify_labeling(clique(3), np.array([0, 0]))

    def test_rejects_split_component(self):
        g = line_graph(4)
        with pytest.raises(VerificationError, match="crosses labels"):
            verify_labeling(g, np.array([0, 0, 1, 1]))

    def test_rejects_merged_components(self):
        g = disjoint_union_edges([clique(3), clique(3)])
        with pytest.raises(VerificationError, match="components"):
            verify_labeling(g, np.zeros(6, dtype=np.int64))

    def test_reference_can_be_supplied(self):
        g = star_graph(5)
        truth = ground_truth_labels(g)
        verify_labeling(g, truth, reference=truth)


class TestVerifyDecomposition:
    def test_accepts_real_decomposition(self):
        g = grid3d(5)
        dec = decomp_arb(g, beta=0.3, seed=1)
        inter = verify_decomposition(g, dec.labels)
        assert inter == dec.num_inter_directed

    def test_rejects_center_outside_partition(self):
        g = line_graph(4)
        # labels claim center 3 owns vertex 0, but 3's own label is 0
        bad = np.array([3, 3, 0, 0])
        with pytest.raises(VerificationError):
            verify_decomposition(g, bad)

    def test_rejects_disconnected_partition(self):
        g = line_graph(5)
        # partition {0, 4} is not connected inside itself
        bad = np.array([0, 1, 1, 1, 0])
        with pytest.raises(VerificationError, match="cannot reach"):
            verify_decomposition(g, bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(VerificationError):
            verify_decomposition(clique(3), np.array([0, 5, 0]))

    def test_empty(self):
        assert verify_decomposition(empty_graph(0), np.zeros(0, dtype=np.int64)) == 0


class TestPartitionRadii:
    def test_single_partition_radius_is_eccentricity(self):
        g = line_graph(7)
        labels = np.zeros(7, dtype=np.int64)  # center 0 owns everything
        radii = partition_radii(g, labels)
        assert radii.max() == 6
        assert radii[0] == 0

    def test_all_singletons(self):
        g = line_graph(5)
        radii = partition_radii(g, np.arange(5))
        assert (radii == 0).all()

    def test_radii_defined_for_all(self):
        g = grid3d(4)
        dec = decomp_arb(g, beta=0.2, seed=2)
        radii = partition_radii(g, dec.labels)
        assert (radii >= 0).all()


class TestDecompositionStats:
    def test_fields(self):
        g = random_kregular(500, 4, seed=3)
        dec = decomp_arb(g, beta=0.2, seed=1)
        s = decomposition_stats(g, dec, beta=0.2, variant="arb")
        assert s.num_partitions == dec.num_components
        assert 0.0 <= s.inter_edge_fraction <= 1.0
        assert s.theoretical_fraction_bound == pytest.approx(0.4)
        assert s.max_radius >= 0

    def test_min_variant_bound(self):
        g = clique(6)
        dec = decomp_arb(g, beta=0.3, seed=1)
        s = decomposition_stats(g, dec, beta=0.3, variant="min")
        assert s.theoretical_fraction_bound == pytest.approx(0.3)


class TestEdgeDecayAndHistogram:
    def test_edge_decay_ratios(self):
        res = ConnectivityResult(
            labels=np.zeros(1, dtype=np.int64),
            algorithm="x",
            edges_per_iteration=[100, 10, 1],
        )
        assert edge_decay_ratios(res) == [0.1, 0.1]

    def test_edge_decay_handles_zero(self):
        res = ConnectivityResult(
            labels=np.zeros(1, dtype=np.int64),
            algorithm="x",
            edges_per_iteration=[0, 0],
        )
        assert edge_decay_ratios(res) == [0.0]

    def test_component_histogram(self):
        h = component_histogram(np.array([0, 0, 0, 5, 5, 9]))
        assert h["num_components"] == 3
        assert h["largest"] == 3
        assert h["mean_size"] == 2.0

    def test_component_histogram_empty(self):
        h = component_histogram(np.array([], dtype=np.int64))
        assert h["num_components"] == 0

    def test_real_decay_below_bound_due_to_duplicates(self):
        # the paper's Figure 4 observation on a dense graph: every
        # iteration's decay ratio beats the 2*beta bound (a one-
        # iteration run is the extreme case — everything merged at once)
        g = random_kregular(3000, 8, seed=4)
        res = decomp_cc(g, 0.8, variant="arb-hybrid", seed=2)
        for ratio in edge_decay_ratios(res):
            assert ratio < 2 * 0.8


class TestBestOfWarmup:
    """best_of must discard warmup calls before timing (regression).

    At ``repeats=1`` (the CI ``--quick`` mode) min-of-k filters
    nothing: without a discarded warmup the cold first call IS the
    reported number, and one-time setup costs masquerade as kernel
    time.
    """

    def test_warmup_calls_are_not_timed(self):
        from repro.analysis.wallclock import best_of

        calls = []
        best_of(lambda: calls.append(None), repeats=2, warmup=3)
        assert len(calls) == 3 + 2  # warmup ran, and ran first

    def test_default_warmup_is_at_least_one(self):
        from repro.analysis.wallclock import DEFAULT_WARMUP, best_of

        assert DEFAULT_WARMUP >= 1
        calls = []
        best_of(lambda: calls.append(None), repeats=1)
        assert len(calls) == DEFAULT_WARMUP + 1

    def test_returns_minimum_of_timed_repeats(self):
        from repro.analysis.wallclock import best_of

        # A fake workload whose duration we control via sleep-free
        # busy-wait on a monotonic counter is flaky; instead pin the
        # semantics structurally: zero repeats clamps to one timed call.
        calls = []
        result = best_of(lambda: calls.append(None), repeats=0, warmup=0)
        assert len(calls) == 1
        assert result >= 0.0
