"""The chunked parallel backend: determinism, combines, concurrency.

The golden suite (tests/test_engine_parity.py) already replays all 116
fixtures under ``parallel`` at 1/2/4 workers; this module covers the
mechanism underneath and the edges the zoo cannot hit directly:

* every chunked ``ParallelWorkspace`` op equals its serial spec at any
  worker count, across sizes that straddle the chunk grid (empty, one
  element, chunk-1 / chunk / chunk+1, non-divisible totals);
* the sharded scatters (``winner_scatter``, ``minimum_scatter``)
  reproduce the serial priority-CRCW schedules *and* restore their
  shard invariants, so arena reuse across rounds stays correct;
* sanitized parallel runs are race-free and actually record sharded
  combines (proof the chunked paths fired, not the fallbacks);
* concurrent ``Session.run`` callers — the narrowed memo lock — compute
  each key once and never corrupt the pool.

Chunk sizes are shrunk per-test so a few hundred elements exercise real
multi-chunk, multi-worker execution on any machine.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.engine.backend import BACKENDS, resolve_backend
from repro.engine.parallel import DEFAULT_CHUNK_SIZE, ParallelWorkspace, context_gather
from repro.engine.workspace import NULL_WORKSPACE, Workspace, make_workspace
from repro.experiments.harness import profile_run
from repro.graphs import empty_graph, line_graph, random_gnm
from repro.pram.sanitizer import sanitizing
from repro.primitives.atomics import write_min
from repro.runtime.context import current_context
from repro.runtime.session import Session

#: Worker counts exercised everywhere: serial fallback, even split,
#: ragged split (3 does not divide most chunk counts), oversubscribed.
WORKER_COUNTS = (1, 2, 3, 4)

#: Sizes straddling a chunk grid of 64: empty, single, chunk-1, chunk,
#: chunk+1, a non-divisible multi-chunk total, and a many-chunk total.
CHUNK = 64
SIZES = (0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 5 * CHUNK + 17, 1000)


@pytest.fixture(autouse=True)
def _tiny_chunks():
    saved = ParallelWorkspace.chunk_size
    ParallelWorkspace.chunk_size = CHUNK
    try:
        yield
    finally:
        ParallelWorkspace.chunk_size = saved


def _ws(workers: int) -> ParallelWorkspace:
    return ParallelWorkspace(256, workers=workers)


# --------------------------------------------------------------- chunk grid


def test_chunk_grid_is_fixed_and_covers():
    ws = _ws(3)
    chunks = ws._chunks(5 * CHUNK + 17)
    assert chunks is not None
    assert chunks[0][0] == 0 and chunks[-1][1] == 5 * CHUNK + 17
    for (alo, ahi), (blo, bhi) in zip(chunks, chunks[1:]):
        assert ahi == blo  # contiguous, no gaps or overlap
    # All chunks are exactly chunk_size except the ragged tail.
    assert all(hi - lo == CHUNK for lo, hi in chunks[:-1])


def test_serial_fallback_when_small_or_single_worker():
    assert _ws(1)._chunks(10_000) is None
    assert _ws(4)._chunks(CHUNK) is None
    assert _ws(4)._chunks(0) is None


def test_default_chunk_size_is_production_scale():
    assert DEFAULT_CHUNK_SIZE == 1 << 15


# ------------------------------------------------- data-parallel op parity


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("size", SIZES)
def test_elementwise_ops_match_reference(size, workers):
    rng = np.random.default_rng(size * 131 + workers)
    ws = _ws(workers)
    a = rng.integers(0, 50, size=size, dtype=np.int64)
    b = rng.integers(0, 50, size=size, dtype=np.int64)
    arr = rng.integers(0, 1 << 40, size=max(size, 1), dtype=np.int64)
    idx = rng.integers(0, max(size, 1), size=size, dtype=np.int64)
    mask = rng.random(size) < 0.5
    keys = rng.integers(0, 1 << 50, size=size, dtype=np.int64)

    np.testing.assert_array_equal(ws.take(arr, idx, "t"), arr[idx])
    np.testing.assert_array_equal(ws.compress(mask, a, "c"), a[mask])
    np.testing.assert_array_equal(ws.equal(a, b, "e"), a == b)
    np.testing.assert_array_equal(ws.equal(a, np.int64(7), "es"), a == 7)
    np.testing.assert_array_equal(ws.not_equal(a, b, "n"), a != b)
    np.testing.assert_array_equal(ws.logical_not(mask, "l"), ~mask)
    np.testing.assert_array_equal(ws.bitand(a, np.int64(31), "b"), a & 31)
    np.testing.assert_array_equal(ws.sub(a, b, "s"), a - b)
    np.testing.assert_array_equal(ws.as_float(a, "f"), a.astype(np.float64))
    np.testing.assert_array_equal(
        ws.hash_slots(keys, np.uint64(0x9E37), np.uint64(1023), "h"),
        NULL_WORKSPACE.hash_slots(keys, np.uint64(0x9E37), np.uint64(1023), "h"),
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_context_gather_matches_serial(workers):
    rng = np.random.default_rng(workers)
    arr = rng.integers(0, 1 << 40, size=300, dtype=np.int64)
    idx = rng.integers(0, 300, size=5 * CHUNK + 17, dtype=np.int64)
    backend = resolve_backend("parallel")
    with current_context().child(backend=backend, workers=workers).activate():
        got = context_gather(arr, idx)
    np.testing.assert_array_equal(got, arr[idx])
    # Outside a chunked context the gather is the plain serial take.
    np.testing.assert_array_equal(context_gather(arr, idx), arr[idx])


# ------------------------------------------------------- sharded scatters


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("size", [s for s in SIZES if s > 0])
def test_winner_scatter_matches_serial_schedule(size, workers):
    rng = np.random.default_rng(size * 7 + workers)
    idx = rng.integers(0, max(size // 2, 1), size=size, dtype=np.int64)
    want_pos, want_dst = Workspace(256).winner_scatter(idx)
    got_pos, got_dst = _ws(workers).winner_scatter(idx)
    np.testing.assert_array_equal(got_dst, want_dst)
    np.testing.assert_array_equal(got_pos, want_pos)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_winner_scatter_invariants_survive_reuse(workers):
    """Shard state must reset after each combine, or round 2 lies."""
    ws = _ws(workers)
    rng = np.random.default_rng(9)
    for round_no in range(4):
        size = 3 * CHUNK + 11 + round_no
        idx = rng.integers(0, 150, size=size, dtype=np.int64)
        want = Workspace(256).winner_scatter(idx)
        got = ws.winner_scatter(idx)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("size", SIZES)
def test_minimum_scatter_matches_minimum_at(size, workers):
    rng = np.random.default_rng(size * 13 + workers)
    ws = _ws(workers)
    n = 120
    for _ in range(3):  # reuse across rounds: identity-fill must restore
        idx = rng.integers(0, n, size=size, dtype=np.int64)
        values = rng.integers(0, 1 << 30, size=size, dtype=np.int64)
        want = rng.integers(0, 1 << 30, size=n, dtype=np.int64)
        got = want.copy()
        np.minimum.at(want, idx, values)
        ws.minimum_scatter(got, idx, values)
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_write_min_routes_through_workspace(workers):
    rng = np.random.default_rng(workers)
    size = 4 * CHUNK + 5
    idx = rng.integers(0, 90, size=size, dtype=np.int64)
    values = rng.integers(0, 1 << 20, size=size, dtype=np.int64)
    base = rng.integers(0, 1 << 20, size=90, dtype=np.int64)
    want = base.copy()
    np.minimum.at(want, idx, values)
    got = base.copy()
    write_min(got, idx, values, workspace=_ws(workers))
    np.testing.assert_array_equal(got, want)


def test_make_workspace_routes_chunked_backend():
    ws = make_workspace(BACKENDS["parallel"], 100, workers=3)
    assert isinstance(ws, ParallelWorkspace)
    assert ws.workers == 3
    assert not isinstance(make_workspace(BACKENDS["fast"], 100, workers=3),
                          ParallelWorkspace)


# --------------------------------------------------- end-to-end edge cases


def _labels(graph, backend, workers, **kwargs):
    ctx = current_context().child(
        backend=resolve_backend(backend), workers=workers
    )
    with ctx.activate():
        profile = profile_run("decomp-arb-CC", graph, seed=1, **kwargs)
    return profile.result.labels


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize(
    "graph_factory",
    [
        lambda: empty_graph(0),           # empty frontier from round zero
        lambda: empty_graph(1),           # single vertex
        lambda: line_graph(2),            # frontier far below one chunk
        lambda: line_graph(5 * CHUNK + 17),  # n not divisible by the grid
        lambda: random_gnm(3 * CHUNK + 7, 900, seed=6),
    ],
    ids=["empty", "single-vertex", "sub-chunk", "ragged-line", "gnm"],
)
def test_edge_case_graphs_match_fast(graph_factory, workers):
    graph = graph_factory()
    want = _labels(graph, "fast", 1)
    got = _labels(graph, "parallel", workers)
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("workers", (2, 4))
def test_sanitized_parallel_run_is_race_free(workers):
    graph = random_gnm(3 * CHUNK + 7, 900, seed=6)
    ctx = current_context().child(
        backend=resolve_backend("parallel"), workers=workers
    )
    with ctx.activate():
        with sanitizing() as sanitizer:
            profile_run("decomp-min-CC", graph, seed=2, beta=0.2)
    assert "0 race(s)" in sanitizer.summary()
    assert sanitizer.cas_checked > 0
    # The chunked scatters actually fired (not the serial fallbacks):
    # every sharded combine was declared to the sanitizer.
    assert sanitizer.combines_recorded > 0
    assert "sharded combine(s)" in sanitizer.summary()


# -------------------------------------------------- session concurrency


def test_concurrent_session_runs_compute_each_key_once():
    """The narrowed memo lock: concurrent runs never double-compute."""
    graph = random_gnm(200, 400, seed=8)
    session = Session(graph, graph_name="gnm", backend="parallel", workers=2)
    seeds = [1, 2, 3, 4]
    results = {}
    errors = []

    def work(tid):
        try:
            for seed in seeds:  # every thread asks for every key
                profile = session.run("decomp-arb-CC", seed=seed, beta=0.25)
                results[(tid, seed)] = profile.result.labels
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # One computation per distinct key, everything else a memo hit.
    assert session.misses == len(seeds)
    assert session.hits == len(seeds) * 4 - len(seeds)
    for seed in seeds:
        for tid in range(1, 4):
            np.testing.assert_array_equal(
                results[(tid, seed)], results[(0, seed)]
            )


# --------------------------------------------------------------- CLI seam


def test_cli_workers_flag_validates(capsys):
    assert cli_main(["--workers", "0", "list"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err


def test_cli_backend_errors_enumerate_all_backends(capsys):
    with pytest.raises(SystemExit):
        cli_main(["--backend", "quantum", "list"])
    err = capsys.readouterr().err
    for name in BACKENDS:
        assert name in err
