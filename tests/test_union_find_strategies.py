"""Tests for the union-find compression-strategy variants."""

import numpy as np
import pytest

from repro.connectivity.union_find import COMPRESSION_STRATEGIES, UnionFind
from repro.pram.cost import tracking

STRATEGIES = list(COMPRESSION_STRATEGIES)


@pytest.mark.parametrize("compression", STRATEGIES)
class TestStrategiesAgree:
    def test_chain_unions(self, compression):
        uf = UnionFind(50, compression=compression)
        for i in range(49):
            assert uf.union(i, i + 1)
        assert len(set(uf.components().tolist())) == 1

    def test_random_union_sequence_matches_reference(self, compression):
        rng = np.random.default_rng(3)
        ops = [(int(a), int(b)) for a, b in rng.integers(0, 40, size=(200, 2))]
        uf = UnionFind(40, compression=compression)
        ref = UnionFind(40, compression="none")
        for a, b in ops:
            assert uf.union(a, b) == ref.union(a, b)
        assert np.array_equal(
            _canon(uf.components()), _canon(ref.components())
        )

    def test_find_is_idempotent(self, compression):
        uf = UnionFind(10, compression=compression)
        uf.union(0, 5)
        uf.union(5, 7)
        r = uf.find(7)
        assert uf.find(7) == r
        assert uf.find(0) == r


def _canon(labels: np.ndarray) -> np.ndarray:
    from repro.connectivity.base import canonicalize_labels

    return canonicalize_labels(labels)


class TestStrategyProperties:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown compression"):
            UnionFind(5, compression="telepathy")

    def test_compression_shortens_later_finds(self):
        # build a long chain with no compression, then compare the cost
        # of repeated finds with full compression vs none
        def chain_cost(compression: str) -> int:
            with tracking() as t:
                uf = UnionFind(512, compression=compression)
                # force a deep structure: union in a pattern that yields
                # rank ties and longer paths
                for i in range(1, 512):
                    uf.union(0, i)
                for _ in range(3):
                    for v in range(512):
                        uf.find(v)
                uf.flush_costs()
            return int(t.work_by_kind()["seq"])

        assert chain_cost("full") <= chain_cost("none")

    def test_halving_flattens_paths(self):
        uf = UnionFind(8, compression="halving")
        # manually build a chain 7 -> 6 -> ... -> 0
        uf.parent = list(range(-1, 7))
        uf.parent[0] = 0
        uf.find(7)
        # path halving must have shortened 7's path
        assert uf.parent[7] != 6
