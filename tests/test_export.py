"""Tests for the JSON/CSV artifact exporters."""

import csv
import json


from repro.experiments import export_json, export_series_csv, export_table2_csv


class TestExportJson:
    def test_roundtrip_simple(self, tmp_path):
        path = tmp_path / "x.json"
        export_json({"a": [1, 2], "b": {"c": 3.5}}, path)
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": {"c": 3.5}}

    def test_numeric_keys_coerced(self, tmp_path):
        path = tmp_path / "betas.json"
        export_json({0.1: [100, 10], 0.5: [100, 50]}, path)
        data = json.loads(path.read_text())
        assert data == {"0.1": [100, 10], "0.5": [100, 50]}

    def test_nested_tuples_become_lists(self, tmp_path):
        path = tmp_path / "t.json"
        export_json({"pair": (1, 2)}, path)
        assert json.loads(path.read_text())["pair"] == [1, 2]

    def test_real_fig4_series(self, tmp_path):
        from repro.experiments import build_graph, fig4_edges_remaining

        g = build_graph("line", "tiny")
        series = fig4_edges_remaining(g, "line", betas=[0.1])
        path = tmp_path / "fig4.json"
        export_json(series, path)
        data = json.loads(path.read_text())
        assert data["0.1"][0] == g.num_edges


class TestExportCsv:
    def test_table2_long_form(self, tmp_path):
        table = {
            "serial-SF": {"line": {"1": 0.5, "40h": 0.5}},
            "decomp-arb-CC": {"line": {"1": 1.0, "40h": 0.05}},
        }
        path = tmp_path / "t2.csv"
        export_table2_csv(table, path)
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["algorithm", "graph", "threads", "seconds"]
        assert ["decomp-arb-CC", "line", "40h", "0.05"] in rows

    def test_series_csv(self, tmp_path):
        series = {"algo": {"1": 2.0, "40h": 0.1}}
        path = tmp_path / "s.csv"
        export_series_csv(series, path, x_name="threads", y_name="seconds")
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["series", "threads", "seconds"]
        assert ["algo", "40h", "0.1"] in rows

    def test_empty_series(self, tmp_path):
        path = tmp_path / "empty.csv"
        export_series_csv({}, path)
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows == [["series", "x", "y"]]


class TestNumpyCoercion:
    """NumPy scalars at the JSON boundary (regression: json.dump crash).

    ``np.int64`` is NOT an ``int`` subclass: as a dict key it raises
    ``TypeError: keys must be str, int, ...`` and as a value it raises
    ``TypeError: Object of type int64 is not JSON serializable``.
    Every exporter path funnels through ``to_jsonable`` so real sweep
    results (whose counts come straight out of NumPy reductions) dump.
    """

    def test_numpy_keys_and_values(self, tmp_path):
        import numpy as np

        from repro.experiments import to_jsonable

        data = {
            np.int64(7): np.int64(3),
            "radius": np.int64(12),
            "fraction": np.float64(0.25),
            "sizes": np.array([5, 3, 1], dtype=np.int64),
        }
        path = tmp_path / "np.json"
        export_json(data, path)
        reread = json.loads(path.read_text())
        assert reread == {
            "7": 3,
            "radius": 12,
            "fraction": 0.25,
            "sizes": [5, 3, 1],
        }
        assert to_jsonable(np.bool_(True)) is True

    def test_nested_numpy_values(self, tmp_path):
        import numpy as np

        data = {"rows": [{"count": np.int64(4)}, {"count": np.int64(9)}]}
        path = tmp_path / "nested.json"
        export_json(data, path)
        assert json.loads(path.read_text()) == {
            "rows": [{"count": 4}, {"count": 9}]
        }

    def test_real_component_sizes_dump(self, tmp_path):
        # The exact shape that used to crash: np.unique's labels/counts
        # used directly as a {label: size} mapping.
        import numpy as np

        from repro.experiments import build_graph
        from repro.connectivity import decomp_cc

        g = build_graph("3D-grid", "tiny")
        labels = decomp_cc(g, beta=0.2, seed=1).labels
        values, counts = np.unique(labels, return_counts=True)
        sizes = dict(zip(values, counts))  # np.int64 keys AND values
        path = tmp_path / "sizes.json"
        export_json(sizes, path)
        reread = json.loads(path.read_text())
        assert sum(reread.values()) == g.num_vertices
