"""Shared fixtures: the structural graph zoo and cost-tracking helpers."""

from __future__ import annotations

import pytest

from repro.graphs import (
    CSRGraph,
    binary_tree,
    clique,
    cycle_graph,
    disjoint_union_edges,
    empty_graph,
    grid3d,
    line_graph,
    orkut_like,
    random_gnm,
    random_kregular,
    rmat,
    star_graph,
)
from repro.pram import tracking


def _zoo() -> dict:
    """Small structurally diverse graphs covering the algorithms' edge cases."""
    return {
        "empty0": empty_graph(0),
        "empty5": empty_graph(5),
        "single": empty_graph(1),
        "one-edge": line_graph(2),
        "triangle": cycle_graph(3),
        "path": line_graph(50),
        "path-permuted": line_graph(50, seed=3),
        "cycle": cycle_graph(40),
        "star": star_graph(30),
        "clique": clique(10),
        "tree": binary_tree(5),
        "grid": grid3d(4),
        "random": random_kregular(200, 3, seed=1),
        "gnm-sparse": random_gnm(150, 60, seed=2),  # many components
        "gnm-dense": random_gnm(60, 500, seed=3),
        "rmat": rmat(8, 600, seed=4),
        "orkut": orkut_like(300, 8.0, seed=5),
        "union": disjoint_union_edges(
            [line_graph(20), clique(6), star_graph(8), empty_graph(3), cycle_graph(5)]
        ),
    }


_ZOO = _zoo()


@pytest.fixture(scope="session")
def zoo() -> dict:
    return _ZOO


def zoo_params():
    """Parametrization helper: (name, graph) pairs of the zoo."""
    return [pytest.param(g, id=name) for name, g in _ZOO.items()]


def zoo_nonempty_params():
    return [
        pytest.param(g, id=name)
        for name, g in _ZOO.items()
        if g.num_vertices > 0
    ]


@pytest.fixture()
def tracker():
    """A fresh active cost tracker for the duration of one test."""
    with tracking() as t:
        yield t


@pytest.fixture(scope="session")
def medium_random() -> CSRGraph:
    """A mid-sized random graph for statistical tests."""
    return random_kregular(5_000, 5, seed=11)
