"""Regenerate the golden decomposition-parity fixture.

The fixture ``decomp_parity.json`` pins, for every zoo graph x variant
x (beta, seed) combination, the full observable surface of one
decomposition run: the labeling, the recorded inter-edge list, the
per-round statistics, and the cost profile bucketed by (phase, kind).
The engine parity suite (``tests/test_engine_parity.py``) replays the
same runs through the current implementations and asserts bit-identical
results.

The committed fixture was captured at the last pre-engine commit
(``cbcddb5``, the per-variant hand-rolled round loops), so the suite
proves the :mod:`repro.engine` rewrite is seed-for-seed identical to
the original implementations.  Regenerate only when an *intentional*
output or cost-model change is being made, and record the reason here:

* dense-round barrier depth: the pre-engine ``dense_round`` charged
  ``log2(n_vertices + 1)`` packing depth while every other round kernel
  charged ``log2(round_edges + 1)``; the engine routes all of them
  through ``end_round`` (satellite fix), so the fixture's *depth*
  numbers for the hybrid's ``bfsDense`` phase are compared with a
  tolerance instead of exactly (see the parity test).

Usage::

    PYTHONPATH=src:. python tests/golden/generate_decomp_parity.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from repro.bfs import hybrid_bfs, parallel_bfs  # noqa: E402
from repro.connectivity import hybrid_bfs_cc  # noqa: E402
from repro.decomp import DECOMP_VARIANTS  # noqa: E402
from repro.pram.cost import tracking  # noqa: E402

from tests.conftest import _zoo  # noqa: E402

#: (beta, seed) combinations exercised per graph x variant.
COMBOS = [(0.2, 1), (0.35, 7)]

#: Zoo graphs the BFS-family parity entries run on (non-empty ones
#: with varied density so both directions and multi-component paths
#: are exercised).
BFS_GRAPHS = [
    "path", "star", "clique", "grid", "random", "gnm-sparse", "orkut", "union"
]

OUT_PATH = os.path.join(os.path.dirname(__file__), "decomp_parity.json")


def _digest(*arrays: np.ndarray) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a, dtype=np.int64).tobytes())
    return h.hexdigest()


def capture_one(decomp_fn, graph, beta: float, seed: int) -> dict:
    """Run one decomposition under a fresh tracker; record everything."""
    with tracking() as t:
        dec = decomp_fn(graph, beta=beta, seed=seed)
    return {
        "labels_sha256": _digest(dec.labels),
        "inter_sha256": _digest(dec.inter_src, dec.inter_dst),
        "orig_sha256": _digest(dec.orig_src, dec.orig_dst),
        "num_inter_directed": dec.num_inter_directed,
        "num_components": dec.num_components,
        "num_rounds": dec.num_rounds,
        "frontier_sizes": dec.frontier_sizes,
        "edges_inspected": dec.edges_inspected,
        "dense_rounds": dec.dense_rounds,
        **_profile_dict(t),
    }


def _profile_dict(t) -> dict:
    work = {
        f"{ph}|{kind}": w
        for ph, kinds in sorted(t.phase_kind_work().items())
        for kind, w in sorted(kinds.items())
    }
    depth = {
        f"{ph}|{kind}": d
        for ph, kinds in sorted(t.phase_kind_depth().items())
        for kind, d in sorted(kinds.items())
    }
    return {
        "sync_count": t.sync_count,
        "total_work": t.total_work(),
        "total_depth": t.total_depth(),
        "work": work,
        "depth": depth,
    }


def capture_bfs(graph) -> dict:
    """Pin the BFS family: outputs and cost profiles must not drift."""
    out = {}
    with tracking() as t:
        res = parallel_bfs(graph, 0)
    out["parallel_bfs"] = {
        "parents_sha256": _digest(res.parents),
        "distances_sha256": _digest(res.distances),
        "num_rounds": res.num_rounds,
        "num_visited": res.num_visited,
        **_profile_dict(t),
    }
    with tracking() as t:
        res = hybrid_bfs(graph, 0)
    out["hybrid_bfs"] = {
        "parents_sha256": _digest(res.parents),
        "distances_sha256": _digest(res.distances),
        "num_rounds": res.num_rounds,
        "num_visited": res.num_visited,
        "directions": res.directions,
        **_profile_dict(t),
    }
    with tracking() as t:
        res = hybrid_bfs_cc(graph)
    out["hybrid_bfs_cc"] = {
        "labels_sha256": _digest(res.labels),
        "num_components": res.num_components,
        "iterations": res.iterations,
        **_profile_dict(t),
    }
    return out


def main() -> None:
    fixture = {}
    zoo = _zoo()
    for gname, graph in zoo.items():
        for variant in ("min", "arb", "arb-hybrid"):
            fn = DECOMP_VARIANTS[variant]
            for beta, seed in COMBOS:
                key = f"{gname}/{variant}/beta={beta}/seed={seed}"
                fixture[key] = capture_one(fn, graph, beta, seed)
    for gname in BFS_GRAPHS:
        fixture[f"bfs/{gname}"] = capture_bfs(zoo[gname])
    with open(OUT_PATH, "w") as f:
        json.dump(fixture, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(fixture)} entries to {OUT_PATH}")


if __name__ == "__main__":
    main()
