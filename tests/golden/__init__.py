"""Golden fixtures pinning pre-refactor behaviour, plus their generators."""
