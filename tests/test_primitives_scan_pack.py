"""Unit tests for prefix sums, packs and reductions."""

import numpy as np
import pytest

from repro.pram.cost import tracking
from repro.primitives.pack import pack, pack_index, split_by_flag
from repro.primitives.reduce_ops import (
    count_true,
    histogram,
    reduce_max,
    reduce_min,
    reduce_sum,
)
from repro.primitives.scan import (
    exclusive_scan,
    inclusive_scan,
    scan_with_total,
    segmented_scan,
)


class TestScans:
    def test_inclusive_matches_cumsum(self):
        a = np.array([3, 1, 4, 1, 5])
        assert inclusive_scan(a).tolist() == [3, 4, 8, 9, 14]

    def test_exclusive_shifts_by_one(self):
        a = np.array([3, 1, 4, 1, 5])
        assert exclusive_scan(a).tolist() == [0, 3, 4, 8, 9]

    def test_empty_inputs(self):
        assert inclusive_scan(np.array([])).size == 0
        assert exclusive_scan(np.array([])).size == 0

    def test_single_element(self):
        assert exclusive_scan(np.array([7])).tolist() == [0]

    def test_scan_with_total(self):
        offsets, total = scan_with_total(np.array([2, 0, 3]))
        assert offsets.tolist() == [0, 2, 2]
        assert total == 5

    def test_scan_with_total_empty(self):
        offsets, total = scan_with_total(np.array([], dtype=np.int64))
        assert offsets.size == 0 and total == 0

    def test_exclusive_scan_large_random_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, size=10_000)
        expected = np.concatenate(([0], np.cumsum(a)[:-1]))
        assert np.array_equal(exclusive_scan(a), expected)

    def test_scan_charges_linear_work_log_depth(self):
        with tracking() as t:
            exclusive_scan(np.ones(1024, dtype=np.int64))
        assert t.total_work() == 1024.0
        assert t.total_depth() == pytest.approx(np.ceil(np.log2(1025)))


class TestSegmentedScan:
    def test_basic_segments(self):
        values = np.array([1, 1, 1, 1, 1, 1])
        segs = np.array([0, 0, 0, 1, 1, 2])
        assert segmented_scan(values, segs).tolist() == [0, 1, 2, 0, 1, 0]

    def test_single_segment_equals_exclusive_scan(self):
        values = np.array([2, 3, 4])
        segs = np.zeros(3, dtype=np.int64)
        assert segmented_scan(values, segs).tolist() == [0, 2, 5]

    def test_each_element_own_segment(self):
        values = np.array([5, 6, 7])
        segs = np.array([0, 1, 2])
        assert segmented_scan(values, segs).tolist() == [0, 0, 0]

    def test_matches_per_segment_reference(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 10, size=500)
        segs = np.sort(rng.integers(0, 40, size=500))
        out = segmented_scan(values, segs)
        for s in np.unique(segs):
            mask = segs == s
            ref = np.concatenate(([0], np.cumsum(values[mask])[:-1]))
            assert np.array_equal(out[mask], ref)

    def test_rejects_unsorted_segments(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            segmented_scan(np.ones(3), np.array([1, 0, 2]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            segmented_scan(np.ones(3), np.array([0, 0]))

    def test_empty(self):
        assert segmented_scan(np.array([]), np.array([])).size == 0


class TestPack:
    def test_pack_keeps_flagged_in_order(self):
        v = np.array([10, 20, 30, 40])
        f = np.array([True, False, True, False])
        assert pack(v, f).tolist() == [10, 30]

    def test_pack_index(self):
        f = np.array([False, True, True, False, True])
        assert pack_index(f).tolist() == [1, 2, 4]

    def test_pack_all_false(self):
        assert pack(np.arange(5), np.zeros(5, dtype=bool)).size == 0

    def test_pack_empty(self):
        assert pack(np.array([]), np.array([], dtype=bool)).size == 0

    def test_pack_length_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.arange(3), np.array([True]))

    def test_split_by_flag_partitions(self):
        v = np.arange(6)
        f = v % 2 == 0
        kept, dropped = split_by_flag(v, f)
        assert kept.tolist() == [0, 2, 4]
        assert dropped.tolist() == [1, 3, 5]

    def test_approximate_pack_charges_less_depth(self):
        flags = np.ones(1 << 16, dtype=bool)
        with tracking() as exact:
            pack_index(flags)
        with tracking() as approx:
            pack_index(flags, approximate=True)
        assert approx.total_depth() < exact.total_depth()
        assert approx.total_work() == exact.total_work()


class TestReductions:
    def test_reduce_sum(self):
        assert reduce_sum(np.array([1.5, 2.5])) == 4.0

    def test_reduce_sum_empty(self):
        assert reduce_sum(np.array([])) == 0.0

    def test_reduce_max_min(self):
        a = np.array([3, 9, 2])
        assert reduce_max(a) == 9.0
        assert reduce_min(a) == 2.0

    def test_reduce_max_empty_raises(self):
        with pytest.raises(ValueError):
            reduce_max(np.array([]))
        with pytest.raises(ValueError):
            reduce_min(np.array([]))

    def test_count_true(self):
        assert count_true(np.array([True, False, True])) == 2

    def test_histogram_counts(self):
        h = histogram(np.array([0, 2, 2, 5]), num_bins=7)
        assert h.tolist() == [1, 0, 2, 0, 0, 1, 0]

    def test_histogram_infers_bins(self):
        assert histogram(np.array([1, 1, 3])).tolist() == [0, 2, 0, 1]

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            histogram(np.array([-1, 2]))

    def test_histogram_empty(self):
        assert histogram(np.array([], dtype=np.int64), num_bins=3).tolist() == [0, 0, 0]
