"""Fault-injection matrix: every corruption class is benign or recovered.

The acceptance bar for the fault layer: each of the four fault kinds,
injected mid-run, must either

* be **provably benign** — the corrupted execution is still a legal
  CRCW schedule, so the result verifies (``cas_flip``, and
  ``shift_perturb``, which only re-times center starts); or
* be **detected** by ``verify_labeling`` and **recovered** by the
  :class:`~repro.resilience.runner.ResilientRunner` within its retry
  budget (``drop_frontier``, ``label_corrupt``).
"""

import numpy as np
import pytest

from repro.analysis.verify import verify_labeling
from repro.errors import FaultSpecError, VerificationError
from repro.experiments.harness import profile_run
from repro.graphs import disjoint_union_edges, line_graph
from repro.resilience import FAULT_KINDS, FaultPlan, ResilientRunner, parse_fault_plan

pytestmark = pytest.mark.faults


def _path():
    # Unpermuted: vertex i and i+1 are adjacent, so targeted vertex
    # faults hit known edges.
    return line_graph(200)


def _two_components():
    # Vertices [0, 20) and [20, 40): merging across 20 is detectable.
    return disjoint_union_edges([line_graph(20), line_graph(20)])


#: kind -> (spec string, graph factory, expected classification)
FAULT_MATRIX = {
    "cas_flip": ("cas_flip:p=1.0,max_fires=1000000", _path, "benign"),
    "shift_perturb": ("shift_perturb:holdback=0.9", _path, "benign"),
    "drop_frontier": ("drop_frontier:vertices=10|11", _path, "detected"),
    "label_corrupt": (
        "label_corrupt:vertex=3,label_from=30", _two_components, "detected"
    ),
}


def test_matrix_covers_every_fault_kind():
    assert set(FAULT_MATRIX) == set(FAULT_KINDS)


class TestFaultMatrix:
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_fault_fires(self, kind):
        spec, make_graph, _ = FAULT_MATRIX[kind]
        plan = parse_fault_plan(spec, seed=0)
        profile_run(
            "decomp-arb-CC", make_graph(), verify=False, fault_plan=plan, seed=1
        )
        assert plan.fired, f"{kind} never fired — the hook is not wired"
        assert all(rec["kind"] == kind for rec in plan.fired)

    @pytest.mark.parametrize(
        "kind",
        [k for k, (_, _, c) in FAULT_MATRIX.items() if c == "benign"],
    )
    def test_benign_faults_still_verify(self, kind):
        # A legal-schedule perturbation must not break correctness:
        # the run completes and the labeling passes full verification.
        spec, make_graph, _ = FAULT_MATRIX[kind]
        graph = make_graph()
        plan = parse_fault_plan(spec, seed=0)
        prof = profile_run(
            "decomp-arb-CC", graph, verify=False, fault_plan=plan, seed=1
        )
        assert plan.fired
        verify_labeling(graph, prof.result.labels)

    @pytest.mark.parametrize(
        "kind",
        [k for k, (_, _, c) in FAULT_MATRIX.items() if c == "detected"],
    )
    def test_corrupting_faults_are_detected(self, kind):
        spec, make_graph, _ = FAULT_MATRIX[kind]
        graph = make_graph()
        plan = parse_fault_plan(spec, seed=0)
        prof = profile_run(
            "decomp-arb-CC", graph, verify=False, fault_plan=plan, seed=1
        )
        assert plan.fired
        with pytest.raises(VerificationError):
            verify_labeling(graph, prof.result.labels)

    @pytest.mark.parametrize(
        "kind",
        [k for k, (_, _, c) in FAULT_MATRIX.items() if c == "detected"],
    )
    def test_corrupting_faults_are_recovered_by_runner(self, kind):
        spec, make_graph, _ = FAULT_MATRIX[kind]
        graph = make_graph()
        runner = ResilientRunner(
            fault_plan=parse_fault_plan(spec, seed=0, sabotage_runs=1)
        )
        outcome = runner.run_cell("decomp-arb-CC", graph, graph_name="g", seed=1)
        assert outcome.attempts <= runner.retry.max_attempts
        assert not outcome.degraded
        verify_labeling(graph, outcome.profile.result.labels)

    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_every_kind_terminates_under_full_sabotage(self, kind):
        # Even an always-on fault may not hang the algorithm — budgets
        # and the perturb-round limit guarantee the run finishes (and
        # is then either accepted or rejected by verification).
        spec, make_graph, _ = FAULT_MATRIX[kind]
        plan = parse_fault_plan(spec, seed=0, sabotage_runs=10**9)
        prof = profile_run(
            "decomp-arb-CC", make_graph(), verify=False, fault_plan=plan, seed=1
        )
        assert prof.result.labels.shape[0] == make_graph().num_vertices


class TestDeterminism:
    def test_same_seed_same_firings(self):
        records = []
        for _ in range(2):
            plan = parse_fault_plan("cas_flip:p=0.5,max_fires=1000000", seed=42)
            profile_run(
                "decomp-arb-CC", _path(), verify=False, fault_plan=plan, seed=1
            )
            records.append(plan.fired)
        assert records[0] == records[1]

    def test_different_seed_different_schedule(self):
        # 300 contested CAS sites, each flipped with p=0.5: two seeds
        # choosing the identical flip mask has probability 2^-300.
        idx = np.repeat(np.arange(300, dtype=np.int64), 2)
        chosen = []
        for plan_seed in (1, 2):
            plan = parse_fault_plan(
                "cas_flip:p=0.5,max_fires=1000000", seed=plan_seed
            )
            dests, positions = np.unique(idx, return_index=True)
            with plan.activate():
                out_positions, out_dests = plan.perturb_cas(
                    idx, positions.astype(np.int64), dests
                )
            # Whatever was flipped, the schedule must stay legal: each
            # chosen position still writes its own destination.
            assert np.array_equal(idx[out_positions], out_dests)
            chosen.append(out_positions)
        assert not np.array_equal(chosen[0], chosen[1])

    def test_run_rotation_is_reproducible(self):
        # The per-run substream depends only on (seed, run_index).
        def firings():
            plan = parse_fault_plan(
                "cas_flip:p=0.5,max_fires=1000000", seed=7, sabotage_runs=3
            )
            out = []
            for _ in range(3):
                profile_run(
                    "decomp-arb-CC", _path(), verify=False, fault_plan=plan, seed=1
                )
                out.append(list(plan.fired))
            return out

        assert firings() == firings()


class TestLabelCorruptLegality:
    def test_corrupt_labels_stay_legal_vertex_ids(self):
        # Contraction indexes arrays of length n with the labels, so a
        # corrupted label must still be a real vertex id.
        graph = _two_components()
        plan = parse_fault_plan("label_corrupt:vertex=3,label_from=30", seed=0)
        prof = profile_run(
            "decomp-arb-CC", graph, verify=False, fault_plan=plan, seed=1
        )
        labels = prof.result.labels
        assert labels.min() >= 0
        assert labels.max() < graph.num_vertices
        assert labels.shape == (graph.num_vertices,)
        assert np.issubdtype(labels.dtype, np.integer)


class TestSpecParsing:
    def test_parse_multi_clause(self):
        plan = FaultPlan.parse(
            "cas_flip:p=0.5;drop_frontier:vertices=1|2,max_fires=3"
        )
        assert [s.kind for s in plan.specs] == ["cas_flip", "drop_frontier"]
        assert plan.specs[0].probability == 0.5
        assert plan.specs[1].vertices == [1, 2]
        assert plan.specs[1].max_fires == 3

    def test_parse_rounds_and_holdback(self):
        plan = FaultPlan.parse("shift_perturb:holdback=0.8,rounds=0|1|2")
        assert plan.specs[0].holdback == 0.8
        assert plan.specs[0].rounds == [0, 1, 2]

    def test_describe_mentions_every_kind(self):
        plan = FaultPlan.parse("cas_flip;shift_perturb")
        text = plan.describe()
        assert "cas_flip" in text and "shift_perturb" in text

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ";",
            "warp_core_breach",
            "cas_flip:p=high",
            "cas_flip:probability=2.0",
            "cas_flip:mystery=1",
            "drop_frontier:vertices",
            "shift_perturb:holdback=-0.1",
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_parse_fault_plan_none_passthrough(self):
        assert parse_fault_plan(None) is None
