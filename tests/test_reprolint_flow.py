"""The interprocedural rules RL006-RL009: units, seeded regressions,
the incremental cache, and config diagnostics.

Mirrors ``test_reprolint.py`` for the dataflow-powered rule family:
each rule flags its doctored kernel — including planted in a copy of
the *real* ``engine/parallel.py`` under the checked-in config — and
stays quiet on the sanctioned shapes the real code uses.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.reprolint import (
    LintCache,
    lint_paths,
    load_config,
    rules_for_path,
    run_lint,
)
from repro.analysis.reprolint.rules import RULE_CHECKERS
from repro.errors import LintConfigError

REPO_ROOT = Path(__file__).resolve().parent.parent
PARALLEL = REPO_ROOT / "src" / "repro" / "engine" / "parallel.py"
CONFIG = REPO_ROOT / "reprolint.toml"

ENGINE = "src/repro/engine/x.py"
PARALLEL_KEY = "src/repro/engine/parallel.py"
RUNTIME = "src/repro/runtime/x.py"


def check(rule: str, source: str, path_key: str = ENGINE):
    return list(RULE_CHECKERS[rule](ast.parse(source), path_key))


class TestRL006WorkerTaint:
    def test_worker_sized_allocation_flagged(self):
        violations = check(
            "RL006",
            "import numpy as np\n"
            "class W:\n"
            "    def kernel(self):\n"
            "        return np.empty(self.workers * 4, dtype=np.int64)\n",
        )
        assert [v.rule for v in violations] == ["RL006"]
        assert violations[0].line == 4

    def test_taint_through_helper_into_chunk_and_step(self):
        violations = check(
            "RL006",
            "def per_worker(self, n):\n"
            "    return n // self.workers\n"
            "class W:\n"
            "    def kernel(self, n):\n"
            "        chunk_size = per_worker(self, n)\n"
            "        return list(range(0, n, chunk_size))\n",
        )
        # The tainted store into a chunk-named binding and the tainted
        # range() step are separate findings.
        assert len(violations) == 2
        assert {v.line for v in violations} == {5, 6}

    def test_constant_chunk_grid_is_clean(self):
        assert not check(
            "RL006",
            "DEFAULT_CHUNK_SIZE = 1 << 15\n"
            "class W:\n"
            "    def kernel(self, n):\n"
            "        step = DEFAULT_CHUNK_SIZE\n"
            "        return list(range(0, n, step))\n",
        )

    def test_worker_count_as_parallelism_degree_is_clean(self):
        # Using the count to *schedule* (pool width) is fine; only
        # value-shaping uses are findings.
        assert not check(
            "RL006",
            "class W:\n"
            "    def kernel(self, tasks):\n"
            "        pool = get_pool(self.workers)\n"
            "        return pool\n",
        )


class TestRL007DisjointSlices:
    HEADER = (
        "import numpy as np\n"
        "class ParallelWorkspace:\n"
        "    def take(self, arr, idx, key):\n"
        "        spans = self._chunks(idx.shape[0])\n"
        "        out = self._buf(key, idx.shape[0], arr.dtype)\n"
    )

    def test_off_by_one_overlap_flagged(self):
        violations = check(
            "RL007",
            self.HEADER
            + "        self._foreach_span(\n"
            "            spans,\n"
            "            lambda lo, hi: np.take(\n"
            "                arr, idx[lo:hi], out=out[lo:hi + 1], mode='clip'\n"
            "            ),\n"
            "        )\n"
            "        return out\n",
            PARALLEL_KEY,
        )
        assert len(violations) == 1
        assert violations[0].rule == "RL007"

    def test_whole_array_out_flagged(self):
        violations = check(
            "RL007",
            self.HEADER
            + "        self._foreach_span(\n"
            "            spans,\n"
            "            lambda lo, hi: np.take(arr, idx[lo:hi], out=out),\n"
            "        )\n"
            "        return out\n",
            PARALLEL_KEY,
        )
        assert len(violations) == 1

    def test_exact_span_slice_is_clean(self):
        assert not check(
            "RL007",
            self.HEADER
            + "        self._foreach_span(\n"
            "            spans,\n"
            "            lambda lo, hi: np.take(\n"
            "                arr, idx[lo:hi], out=out[lo:hi], mode='clip'\n"
            "            ),\n"
            "        )\n"
            "        return out\n",
            PARALLEL_KEY,
        )

    def test_non_worker_shard_key_flagged(self):
        violations = check(
            "RL007",
            "class ParallelWorkspace:\n"
            "    def scatter(self, idx, total):\n"
            "        spans = self._worker_spans(total)\n"
            "        def body(w, lo, hi):\n"
            "            shard = self._shard_buf(0, 'k', total, int)\n"
            "            shard[idx[lo:hi]] = 1\n"
            "        self._run(\n"
            "            [\n"
            "                (lambda w=w, lo=lo, hi=hi: body(w, lo, hi))\n"
            "                for w, (lo, hi) in enumerate(spans)\n"
            "            ]\n"
            "        )\n",
            PARALLEL_KEY,
        )
        assert len(violations) == 1
        assert "shard" in violations[0].message

    def test_worker_keyed_shard_is_clean(self):
        assert not check(
            "RL007",
            "class ParallelWorkspace:\n"
            "    def scatter(self, idx, total):\n"
            "        spans = self._worker_spans(total)\n"
            "        def body(w, lo, hi):\n"
            "            shard = self._shard_buf(w, 'k', total, int)\n"
            "            shard[idx[lo:hi]] = 1\n"
            "        self._run(\n"
            "            [\n"
            "                (lambda w=w, lo=lo, hi=hi: body(w, lo, hi))\n"
            "                for w, (lo, hi) in enumerate(spans)\n"
            "            ]\n"
            "        )\n",
            PARALLEL_KEY,
        )

    def test_unsanctioned_span_provenance_flagged(self):
        violations = check(
            "RL007",
            "class ParallelWorkspace:\n"
            "    def op(self, out, total):\n"
            "        spans = self._unsliced(total)\n"
            "        self._foreach_span(spans, lambda lo, hi: work(out[lo:hi]))\n",
            PARALLEL_KEY,
        )
        assert len(violations) == 1


class TestRL008Lifecycle:
    def test_claimed_pool_on_early_return_flagged(self):
        violations = check(
            "RL008",
            "class Session:\n"
            "    def run(self):\n"
            "        ws = self._claim_pool()\n"
            "        if bad(ws):\n"
            "            return None\n"
            "        result = compute(ws)\n"
            "        self._release_pool(ws)\n"
            "        return result\n",
            RUNTIME,
        )
        # Claimed on the early return AND on every exceptional path
        # out of compute(); one finding per leaking exit kind at least.
        assert violations
        assert all(v.rule == "RL008" for v in violations)

    def test_release_in_finally_is_clean(self):
        assert not check(
            "RL008",
            "class Session:\n"
            "    def run(self):\n"
            "        ws = self._claim_pool()\n"
            "        try:\n"
            "            return compute(ws)\n"
            "        finally:\n"
            "            self._release_pool(ws)\n",
            RUNTIME,
        )

    def test_conditional_claim_conditional_release_is_clean(self):
        # Session.run's real shape: the claim only happens on one
        # branch, and the finally releases exactly then — the MAYBE
        # state at the join must not be flagged.
        assert not check(
            "RL008",
            "class Session:\n"
            "    def run(self, wait_for):\n"
            "        ws = None\n"
            "        if wait_for is None:\n"
            "            ws = self._claim_pool()\n"
            "        try:\n"
            "            return compute(ws)\n"
            "        finally:\n"
            "            if ws is not None:\n"
            "                self._release_pool(ws)\n",
            RUNTIME,
        )

    def test_token_without_finally_flagged(self):
        violations = check(
            "RL008",
            "def activate(self):\n"
            "    token = _CONTEXT.set(self)\n"
            "    yield self\n"
            "    _CONTEXT.reset(token)\n",
            RUNTIME,
        )
        assert violations
        assert "exceptional" in " ".join(v.message for v in violations)

    def test_token_set_reset_in_finally_is_clean(self):
        assert not check(
            "RL008",
            "def activate(self):\n"
            "    token = _CONTEXT.set(self)\n"
            "    try:\n"
            "        yield self\n"
            "    finally:\n"
            "        _CONTEXT.reset(token)\n",
            RUNTIME,
        )

    def test_discarded_acquire_flagged(self):
        violations = check(
            "RL008",
            "def run(ctx, n):\n"
            "    ctx.acquire_workspace(n)\n"
            "    return compute(n)\n",
            RUNTIME,
        )
        assert len(violations) == 1
        assert "discard" in violations[0].message

    def test_double_acquire_flagged(self):
        violations = check(
            "RL008",
            "def run(ctx, n):\n"
            "    a = ctx.acquire_workspace(n)\n"
            "    b = ctx.acquire_workspace(n)\n"
            "    return compute(a, b)\n",
            RUNTIME,
        )
        assert len(violations) == 1

    def test_single_bound_acquire_is_clean(self):
        assert not check(
            "RL008",
            "def run(ctx, n):\n"
            "    ws = ctx.acquire_workspace(n)\n"
            "    return compute(ws)\n",
            RUNTIME,
        )


class TestRL009ShardCombines:
    COMBINE = (
        "import numpy as np\n"
        "class ParallelWorkspace:\n"
        "    def {name}(self, dest, touched, bound, identity):\n"
        "        spans = self._worker_spans(bound)\n"
        "        for w in range(len(spans)):\n"
        "            hit = touched[w]\n"
        "            shard = self._shard_filled(w, 'k', bound, identity, int)\n"
        "            {merge}\n"
    )

    def _combine(self, name: str, merge: str):
        return check(
            "RL009",
            self.COMBINE.format(name=name, merge=merge),
            PARALLEL_KEY,
        )

    def test_arithmetic_accumulation_always_flagged(self):
        # Even inside a sanctioned combiner's name: += over shards is
        # merge-order-sensitive, full stop.
        violations = self._combine(
            "minimum_scatter", "dest[hit] += shard[hit]"
        )
        assert [v.rule for v in violations] == ["RL009"]

    def test_np_add_merge_flagged(self):
        violations = self._combine(
            "minimum_scatter", "dest[hit] = np.add(dest[hit], shard[hit])"
        )
        assert len(violations) == 1

    def test_min_merge_outside_sanctioned_combiner_flagged(self):
        violations = self._combine(
            "custom_merge", "dest[hit] = np.minimum(dest[hit], shard[hit])"
        )
        assert len(violations) == 1
        assert "custom_merge" in violations[0].qualname

    def test_sanctioned_min_fold_is_clean(self):
        assert not self._combine(
            "minimum_scatter", "dest[hit] = np.minimum(dest[hit], shard[hit])"
        )

    def test_sanctioned_winner_overwrite_is_clean(self):
        assert not self._combine("winner_scatter", "dest[hit] = shard[hit]")


class TestSeededRegressionParallel:
    """Doctored copies of the *real* parallel backend must be flagged."""

    def _stage(self, tmp_path: Path, mutate) -> Path:
        staged = tmp_path / "src" / "repro" / "engine" / "parallel.py"
        staged.parent.mkdir(parents=True)
        staged.write_text(mutate(PARALLEL.read_text(encoding="utf-8")))
        return staged

    def _lint(self, staged: Path):
        return lint_paths([staged], load_config(CONFIG), enforce_stale=False)

    def test_unmodified_copy_is_clean(self, tmp_path):
        staged = self._stage(tmp_path, lambda src: src)
        report = self._lint(staged)
        assert report.violations == []
        # The one RL006 suppression (_worker_spans) fired.
        assert report.suppressed > 0

    def test_seeded_worker_sized_buffer_flagged(self, tmp_path):
        evil = "        pad = np.empty(self.workers * 4, dtype=np.int64)\n"
        staged = self._stage(
            tmp_path,
            lambda src: src.replace(
                "        out = self._buf(key, idx.shape[0], arr.dtype)\n",
                evil + "        out = self._buf(key, idx.shape[0], arr.dtype)\n",
                1,
            ),
        )
        line = staged.read_text().splitlines().index(evil.rstrip("\n")) + 1
        hits = [v for v in self._lint(staged).violations if v.rule == "RL006"]
        assert [v.line for v in hits] == [line]
        assert f"parallel.py:{line}:" in hits[0].format()

    def test_seeded_overlapping_slice_flagged(self, tmp_path):
        staged = self._stage(
            tmp_path,
            lambda src: src.replace(
                "arr, idx[lo:hi], out=out[lo:hi], mode=\"clip\"",
                "arr, idx[lo:hi], out=out[lo : hi + 1], mode=\"clip\"",
                1,
            ),
        )
        hits = [v for v in self._lint(staged).violations if v.rule == "RL007"]
        assert len(hits) == 1
        assert hits[0].qualname.endswith("take")

    def test_seeded_leaky_pool_claim_flagged(self, tmp_path):
        evil = (
            "\n\ndef leaky_run(session, frontier):\n"
            "    ws = session._claim_pool()\n"
            "    if frontier is None:\n"
            "        return None\n"
            "    out = ws.take(frontier, frontier, \"leak\")\n"
            "    session._release_pool(ws)\n"
            "    return out\n"
        )
        staged = self._stage(tmp_path, lambda src: src + evil)
        hits = [v for v in self._lint(staged).violations if v.rule == "RL008"]
        assert hits
        assert all(v.qualname == "leaky_run" for v in hits)

    def test_seeded_additive_combine_flagged(self, tmp_path):
        staged = self._stage(
            tmp_path,
            lambda src: src.replace(
                "            dest[hit] = np.minimum(dest[hit], shard[hit])\n",
                "            dest[hit] = np.add(dest[hit], shard[hit])\n",
                1,
            ),
        )
        hits = [v for v in self._lint(staged).violations if v.rule == "RL009"]
        assert len(hits) == 1
        assert hits[0].qualname.endswith("minimum_scatter")


class TestIncrementalCache:
    def _counting_checkers(self, monkeypatch):
        calls = {"n": 0}
        for rule, checker in list(RULE_CHECKERS.items()):
            def wrapper(tree, path, _c=checker):
                calls["n"] += 1
                return _c(tree, path)
            monkeypatch.setitem(RULE_CHECKERS, rule, wrapper)
        return calls

    def test_warm_run_invokes_no_checkers(self, tmp_path, monkeypatch):
        calls = self._counting_checkers(monkeypatch)
        config = load_config(CONFIG)
        cache_path = tmp_path / ".reprolint-cache.json"

        cold_cache = LintCache.load(cache_path)
        cold = lint_paths(
            [PARALLEL], config, enforce_stale=False, cache=cold_cache
        )
        cold_calls = calls["n"]
        assert cold_calls >= 5  # several rules actually analyzed the file
        assert cold_cache.misses > 0

        calls["n"] = 0
        warm_cache = LintCache.load(cache_path)
        warm = lint_paths(
            [PARALLEL], config, enforce_stale=False, cache=warm_cache
        )
        # >= 5x faster by construction: the warm run re-ran *zero*
        # checkers, replaying raw findings from the content-hash cache.
        assert calls["n"] == 0
        assert warm_cache.hits > 0
        assert [v.format() for v in warm.violations] == [
            v.format() for v in cold.violations
        ]
        assert warm.suppressed == cold.suppressed

    def test_edited_file_misses_the_cache(self, tmp_path, monkeypatch):
        calls = self._counting_checkers(monkeypatch)
        config = load_config(CONFIG)
        cache_path = tmp_path / ".reprolint-cache.json"
        target = tmp_path / "src" / "repro" / "engine" / "parallel.py"
        target.parent.mkdir(parents=True)
        target.write_text(PARALLEL.read_text(encoding="utf-8"))

        cache = LintCache.load(cache_path)
        lint_paths([target], config, enforce_stale=False, cache=cache)
        assert calls["n"] > 0

        target.write_text(
            PARALLEL.read_text(encoding="utf-8") + "\n# touched\n"
        )
        calls["n"] = 0
        cache2 = LintCache.load(cache_path)
        lint_paths([target], config, enforce_stale=False, cache=cache2)
        assert calls["n"] > 0  # content hash changed -> re-analyzed

    def test_allowlist_edits_do_not_go_stale_on_warm_runs(self, tmp_path):
        # Suppression is applied *after* cache replay, so narrowing the
        # config surfaces previously-suppressed findings on a warm run.
        cache_path = tmp_path / ".reprolint-cache.json"
        config = load_config(CONFIG)
        cache = LintCache.load(cache_path)
        clean = lint_paths(
            [PARALLEL], config, enforce_stale=False, cache=cache
        )
        assert clean.violations == []

        from repro.analysis.reprolint import LintConfig

        warm = lint_paths(
            [PARALLEL],
            LintConfig(),
            enforce_stale=False,
            cache=LintCache.load(cache_path),
        )
        # The _worker_spans RL006 finding reappears without its entry.
        assert any(v.rule == "RL006" for v in warm.violations)


class TestConfigDiagnostics:
    def _load(self, tmp_path: Path, text: str):
        p = tmp_path / "reprolint.toml"
        p.write_text(text)
        return p, lambda: load_config(p)

    def test_errors_carry_the_entry_line_number(self, tmp_path):
        p, load = self._load(
            tmp_path,
            '[[allow]]\n'
            'rule = "RL001"\n'
            'site = "a.py::f"\n'
            'reason = "fine"\n'
            '\n'
            '[[allow]]\n'
            'rule = "RL999"\n'
            'site = "b.py::g"\n'
            'reason = "broken"\n',
        )
        with pytest.raises(LintConfigError) as err:
            load()
        assert f"{p}:6: allow[1]" in str(err.value)

    def test_unknown_entry_keys_rejected(self, tmp_path):
        _, load = self._load(
            tmp_path,
            '[[allow]]\n'
            'rule = "RL001"\n'
            'site = "a.py::f"\n'
            'reason = "x"\n'
            'sevirity = "low"\n',
        )
        with pytest.raises(LintConfigError, match="unknown keys"):
            load()

    def test_scopes_cover_the_new_rules(self):
        assert "RL006" in rules_for_path("src/repro/engine/workspace.py")
        assert "RL007" in rules_for_path(PARALLEL_KEY)
        assert "RL007" not in rules_for_path("src/repro/engine/kernels.py")
        assert "RL008" in rules_for_path("src/repro/runtime/session.py")
        assert "RL008" in rules_for_path("src/repro/runtime/context.py")
        assert "RL009" in rules_for_path(PARALLEL_KEY)

    def test_full_tree_is_clean_under_the_flow_rules_too(self):
        report = run_lint()
        assert report.ok, "\n".join(report.format_lines())
