"""Tests for the differential fuzzing harness (``src/repro/fuzz/``).

Covers the four acceptance pillars: the case stream is deterministic,
a deliberately planted kernel bug is found and auto-shrunk to a
handful of vertices, the checked-in crash corpus replays green on both
backends under the sanitizer, and the CLI entry points wire it all
together.
"""

import itertools
import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.fuzz import (
    CaseConfig,
    CaseGenerator,
    CaseGraph,
    FuzzCase,
    build_case_graph,
    corpus_paths,
    fuzz_run,
    load_case,
    run_case,
    save_case,
    shrink_case,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCaseSerialization:
    def test_family_roundtrip(self):
        case = FuzzCase(
            graph=CaseGraph(
                kind="family", family="lollipop", params={"clique": 4, "tail": 3}
            ),
            config=CaseConfig(algorithm="decomp-arb-CC", beta=0.4, seed=9),
            case_id="t-1",
        )
        again = FuzzCase.from_json(case.to_json())
        assert again == case

    def test_edges_roundtrip(self):
        case = FuzzCase(
            graph=CaseGraph(
                kind="edges", num_vertices=5, edges=((0, 0), (1, 2), (1, 2))
            ),
            config=CaseConfig(
                algorithm="serial-SF",
                backends=("reference",),
                fault="cas_flip:p=0.5",
                fault_seed=4,
            ),
        )
        again = FuzzCase.from_json(case.to_json())
        assert again.graph == case.graph
        assert again.config == case.config

    def test_content_hash_ignores_id_and_note(self):
        g = CaseGraph(kind="edges", num_vertices=2, edges=())
        c = CaseConfig(algorithm="serial-SF")
        a = FuzzCase(graph=g, config=c, case_id="a", note="x")
        b = FuzzCase(graph=g, config=c, case_id="b", note="y")
        assert a.content_hash() == b.content_hash()

    def test_unknown_family_rejected(self):
        with pytest.raises(ParameterError, match="family"):
            CaseGraph.from_json({"kind": "family", "family": "petersen"})

    def test_unknown_format_rejected(self):
        with pytest.raises(ParameterError, match="format"):
            FuzzCase.from_json({"format": 99, "graph": {}, "config": {}})

    def test_edges_case_builds_with_isolated_tail(self):
        g = build_case_graph(
            CaseGraph(kind="edges", num_vertices=9, edges=((0, 1),))
        )
        assert g.num_vertices == 9 and g.num_edges == 1


class TestGeneratorDeterminism:
    def test_same_seed_same_stream(self):
        a = CaseGenerator(7)
        b = CaseGenerator(7)
        for i in range(50):
            assert a.case(i).to_json() == b.case(i).to_json()

    def test_random_access_matches_streaming(self):
        gen = CaseGenerator(3)
        streamed = list(itertools.islice(gen.cases(), 20))
        for i, case in enumerate(streamed):
            assert gen.case(i).to_json() == case.to_json()

    def test_different_seeds_differ(self):
        a = [CaseGenerator(1).case(i).to_json() for i in range(20)]
        b = [CaseGenerator(2).case(i).to_json() for i in range(20)]
        assert a != b

    def test_every_generated_graph_builds(self):
        for case in itertools.islice(CaseGenerator(11).cases(), 30):
            g = build_case_graph(case.graph)
            assert g.num_vertices >= 0


class TestOracle:
    def test_clean_case_passes(self):
        case = FuzzCase(
            graph=CaseGraph(kind="family", family="path", params={"n": 12}),
            config=CaseConfig(algorithm="decomp-arb-CC", sanitize=True),
        )
        outcome = run_case(case)
        assert outcome.passed and outcome.num_components == 1

    def test_planted_bug_is_found(self):
        case = FuzzCase(
            graph=CaseGraph(kind="edges", num_vertices=3, edges=()),
            config=CaseConfig(algorithm="decomp-arb-CC"),
        )
        outcome = run_case(case, planted="merge-components")
        assert not outcome.passed
        assert "wrong-labeling" in outcome.kinds()

    def test_planted_bug_skips_other_algorithms(self):
        case = FuzzCase(
            graph=CaseGraph(kind="edges", num_vertices=3, edges=()),
            config=CaseConfig(algorithm="serial-SF"),
        )
        assert run_case(case, planted="merge-components").passed

    def test_unknown_planted_name_rejected(self):
        with pytest.raises(ParameterError, match="planted"):
            fuzz_run(seed=1, max_cases=1, planted="no-such-bug")


class TestShrinker:
    def test_planted_bug_shrinks_to_minimal_graph(self):
        # A haystack: 30-vertex random graph, family-encoded.  The
        # shrinker must materialize, cut and compact it down to the
        # planted bug's essential shape (two isolated vertices).
        case = FuzzCase(
            graph=CaseGraph(
                kind="family",
                family="random",
                params={"n": 30, "m": 25, "seed": 5},
            ),
            config=CaseConfig(
                algorithm="decomp-arb-CC", beta=0.4, seed=6, sanitize=True
            ),
        )
        assert not run_case(case, planted="merge-components").passed
        result = shrink_case(case, planted="merge-components")
        assert result.kinds == ("wrong-labeling",)
        assert result.case.graph.kind == "edges"
        assert result.num_vertices <= 8  # the acceptance bound
        assert result.num_edges <= 1
        # Config minimization dropped what the failure does not need.
        assert result.case.config.sanitize is False
        assert result.case.config.beta == 0.2
        # The shrunk case still fails the same way.
        assert not run_case(result.case, planted="merge-components").passed

    def test_passing_case_returned_unchanged(self):
        case = FuzzCase(
            graph=CaseGraph(kind="family", family="path", params={"n": 5}),
            config=CaseConfig(algorithm="serial-SF"),
        )
        result = shrink_case(case)
        assert result.kinds == ()
        assert result.case.graph == case.graph


class TestCorpusReplay:
    def test_corpus_is_seeded(self):
        assert len(corpus_paths()) >= 5

    @pytest.mark.parametrize(
        "path", corpus_paths(), ids=lambda p: p.stem if p else "none"
    )
    def test_replays_green_with_sanitizer(self, path):
        case = load_case(path)
        armed = case.with_config(replace(case.config, sanitize=True))
        outcome = run_case(armed)
        assert outcome.passed, (
            f"{path.name}: {[str(f) for f in outcome.findings]}"
        )

    def test_one_case_is_fault_injected(self):
        faults = [c.config.fault for _, c in _iter_checked_in()]
        assert any(f is not None for f in faults)

    def test_fault_case_is_detected_not_ignored(self):
        for _, case in _iter_checked_in():
            if case.config.fault is None:
                continue
            outcome = run_case(case)
            assert outcome.detected and outcome.detected_by == "verifier"

    def test_corpus_files_are_canonical_json(self):
        for path, case in _iter_checked_in():
            data = json.loads(path.read_text())
            assert data["format"] == 1
            assert FuzzCase.from_json(data).graph == case.graph


def _iter_checked_in():
    return [(p, load_case(p)) for p in corpus_paths()]


class TestFuzzRun:
    def test_clean_session_has_no_failures(self, tmp_path):
        report = fuzz_run(seed=7, max_cases=30, corpus_dir=tmp_path)
        assert report.ok and report.cases_run == 30
        assert list(tmp_path.iterdir()) == []

    def test_report_is_deterministic(self):
        a = fuzz_run(seed=13, max_cases=40, shrink=False)
        b = fuzz_run(seed=13, max_cases=40, shrink=False)
        assert a.to_json() == b.to_json()

    @pytest.mark.fuzz
    def test_200_case_stream_is_deterministic(self):
        # The acceptance contract: two identical invocations produce
        # identical case streams and reports, shrinking included.
        a = fuzz_run(seed=7, max_cases=200)
        b = fuzz_run(seed=7, max_cases=200)
        assert a.to_json() == b.to_json()

    def test_planted_session_finds_shrinks_and_persists(self, tmp_path):
        report = fuzz_run(
            seed=7, max_cases=25, planted="merge-components", corpus_dir=tmp_path
        )
        assert not report.ok
        for failure in report.failures:
            assert failure.shrunk_vertices is not None
            assert failure.shrunk_vertices <= 8
            # The saved repro replays its failure standalone: the
            # planted bug travels inside the case file.
            saved = load_case(failure.repro_path)
            assert saved.config.planted == "merge-components"
            assert not run_case(saved).passed

    def test_time_budget_stops_between_cases(self):
        report = fuzz_run(seed=1, max_cases=500, time_budget=0.0)
        assert report.stopped_by_budget
        assert report.cases_run == 0


class TestCli:
    def test_fuzz_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out = run_cli(
            capsys, "fuzz", "--seed", "7", "--max-cases", "10", "--no-shrink"
        )
        assert code == 0
        assert "fuzz seed  : 7" in out
        assert "failures   : 0" in out

    def test_fuzz_planted_exits_nonzero(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out = run_cli(
            capsys,
            "fuzz",
            "--seed",
            "7",
            "--max-cases",
            "10",
            "--planted",
            "merge-components",
            "--corpus",
            str(tmp_path / "repros"),
        )
        assert code == 1
        assert "wrong-labeling" in out

    def test_fuzz_seed_from_run_id(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GITHUB_RUN_ID", "424242")
        code, out = run_cli(
            capsys, "fuzz", "--seed", "from-run-id", "--max-cases", "2",
            "--no-shrink",
        )
        assert code == 0
        assert "fuzz seed  : 424242" in out

    def test_fuzz_bad_seed_is_parameter_error(self, capsys):
        code = main(["fuzz", "--seed", "banana", "--max-cases", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "from-run-id" in err

    def test_replay_corpus_case(self, capsys):
        path = corpus_paths()[0]
        code, out = run_cli(capsys, "replay", str(path))
        assert code == 0
        assert "verdict    : PASS" in out

    def test_replay_failing_case(self, capsys, tmp_path):
        case = FuzzCase(
            graph=CaseGraph(kind="edges", num_vertices=2, edges=()),
            config=CaseConfig(
                algorithm="decomp-arb-CC", planted="merge-components"
            ),
        )
        path = save_case(tmp_path, case, kinds=("wrong-labeling",))
        code, out = run_cli(capsys, "replay", str(path))
        assert code == 1
        assert "verdict    : FAIL" in out

    def test_replay_missing_file_is_error(self, capsys):
        code = main(["replay", "does-not-exist.json"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
