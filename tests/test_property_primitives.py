"""Property-based tests (hypothesis) for the parallel primitives."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.primitives.atomics import encode_pair, first_winner, write_min
from repro.primitives.hashing import dedup
from repro.primitives.pack import pack, pack_index
from repro.primitives.rand import random_permutation
from repro.primitives.scan import exclusive_scan, inclusive_scan, segmented_scan
from repro.primitives.sort import radix_argsort, radix_sort

ints = st.integers(min_value=0, max_value=2**40)
small_ints = st.integers(min_value=0, max_value=100)


@given(st.lists(ints, max_size=200))
def test_radix_sort_matches_sorted(xs):
    got = radix_sort(np.array(xs, dtype=np.int64))
    assert got.tolist() == sorted(xs)


@given(st.lists(small_ints, min_size=1, max_size=200))
def test_radix_argsort_is_permutation_and_stable(xs):
    keys = np.array(xs, dtype=np.int64)
    perm = radix_argsort(keys)
    assert sorted(perm.tolist()) == list(range(len(xs)))
    s = keys[perm]
    assert np.all(s[:-1] <= s[1:])
    # stability: equal keys keep input order
    for v in set(xs):
        positions = perm[s == v]
        assert list(positions) == sorted(positions)


@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200))
def test_scan_prefix_property(xs):
    a = np.array(xs, dtype=np.int64)
    exc = exclusive_scan(a)
    inc = inclusive_scan(a)
    if len(xs):
        assert np.array_equal(inc, exc + a)
        assert exc[0] == 0


@given(
    st.lists(
        st.tuples(small_ints, st.integers(min_value=0, max_value=5)), max_size=150
    )
)
def test_segmented_scan_equals_per_segment_scan(pairs):
    pairs.sort(key=lambda t: t[1])
    if not pairs:
        return
    values = np.array([p[0] for p in pairs], dtype=np.int64)
    segs = np.array([p[1] for p in pairs], dtype=np.int64)
    out = segmented_scan(values, segs)
    for s in np.unique(segs):
        mask = segs == s
        ref = np.concatenate(([0], np.cumsum(values[mask])[:-1]))
        assert np.array_equal(out[mask], ref)


@given(st.lists(st.booleans(), max_size=200))
def test_pack_index_flatnonzero(flags):
    f = np.array(flags, dtype=bool)
    assert pack_index(f).tolist() == [i for i, x in enumerate(flags) if x]


@given(st.lists(st.tuples(small_ints, st.booleans()), max_size=200))
def test_pack_preserves_order(pairs):
    v = np.array([p[0] for p in pairs], dtype=np.int64)
    f = np.array([p[1] for p in pairs], dtype=bool)
    assert pack(v, f).tolist() == [x for x, keep in pairs if keep]


@given(
    st.integers(min_value=1, max_value=50),
    st.lists(st.tuples(small_ints, small_ints), min_size=1, max_size=300),
)
def test_write_min_equals_sequential_minimum(n, writes):
    idx = np.array([i % n for i, _ in writes], dtype=np.int64)
    vals = np.array([v for _, v in writes], dtype=np.int64)
    dest = np.full(n, 1000, dtype=np.int64)
    expected = dest.copy()
    for i, v in zip(idx, vals):
        expected[i] = min(expected[i], v)
    write_min(dest, idx, vals)
    assert np.array_equal(dest, expected)


@given(st.lists(small_ints, max_size=300))
def test_first_winner_unique_destinations(xs):
    idx = np.array(xs, dtype=np.int64)
    pos, dests = first_winner(idx)
    assert dests.tolist() == sorted(set(xs))
    # each winner position is the first occurrence of its destination
    for p, d in zip(pos.tolist(), dests.tolist()):
        assert xs[p] == d
        assert xs.index(d) == p


@given(
    st.lists(st.integers(min_value=0, max_value=2**30), max_size=100),
    st.lists(st.integers(min_value=0, max_value=2**30), max_size=100),
)
def test_encode_pair_orders_lexicographically(ps, xs):
    k = min(len(ps), len(xs))
    if k < 2:
        return
    p = np.array(ps[:k], dtype=np.int64)
    x = np.array(xs[:k], dtype=np.int64)
    enc = encode_pair(p, x)
    for i in range(k - 1):
        assert (enc[i] < enc[i + 1]) == ((ps[i], xs[i]) < (ps[i + 1], xs[i + 1]))


@given(st.lists(ints, max_size=400), st.integers(min_value=0, max_value=2**31))
def test_dedup_equals_set(xs, seed):
    got = dedup(np.array(xs, dtype=np.int64), seed=seed)
    assert sorted(got.tolist()) == sorted(set(xs))
    assert len(got) == len(set(xs))


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=2**31),
)
def test_random_permutation_property(n, seed):
    p = random_permutation(n, seed)
    assert sorted(p.tolist()) == list(range(n))
