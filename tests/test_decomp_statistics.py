"""Statistical validation of the decomposition's theoretical guarantees.

Theorem 2 (Decomp-Arb) promises at most 2*beta*m inter-component edges
in expectation; the original bound (Decomp-Min) is beta*m.  The
partition diameter is O(log n / beta) w.h.p. in both.  These tests
check the bounds over seed ensembles with generous slack (they are
expectations, not per-run guarantees).
"""

import numpy as np
import pytest

from repro.analysis.stats import partition_radii
from repro.decomp import decomp_arb, decomp_arb_hybrid, decomp_min
from repro.graphs.generators import grid3d, line_graph, random_kregular

SEEDS = range(8)


def mean_inter_fraction(graph, fn, beta):
    fracs = []
    for seed in SEEDS:
        dec = fn(graph, beta=beta, seed=seed)
        fracs.append((dec.num_inter_directed / 2) / graph.num_edges)
    return float(np.mean(fracs))


class TestInterEdgeBound:
    @pytest.mark.parametrize("beta", [0.1, 0.3])
    def test_arb_respects_2beta_on_line(self, beta):
        # the line graph is the bound's tight case (no duplicate edges)
        g = line_graph(5_000, seed=1)
        frac = mean_inter_fraction(g, decomp_arb, beta)
        assert frac <= 2 * beta * 1.3  # 30% slack on an 8-seed mean

    @pytest.mark.parametrize("beta", [0.1, 0.3])
    def test_min_respects_2beta_on_line(self, beta):
        # Note: the *implemented* Decomp-Min (the paper's Algorithm 2)
        # quantizes start times to integer rounds, so vertices whose
        # start arrives mid-round still start their own BFS — on a path
        # its cut count coincides with Decomp-Arb's and only the 2*beta
        # bound is observable.  (The fractional delta' tie-break decides
        # *which* side wins a contended vertex, which cannot change the
        # number of cut edges on a path.)
        g = line_graph(5_000, seed=1)
        frac = mean_inter_fraction(g, decomp_min, beta)
        assert frac <= 2 * beta * 1.3

    def test_min_and_arb_cut_counts_coincide_on_a_path(self):
        # Structural fact used above: on a path, each ball boundary cuts
        # exactly one edge whichever side wins the tie, so the two tie
        # rules give identical cut counts (though different labels).
        g = line_graph(5_000, seed=1)
        for seed in range(4):
            c_min = decomp_min(g, beta=0.2, seed=seed).num_inter_directed
            c_arb = decomp_arb(g, beta=0.2, seed=seed).num_inter_directed
            assert c_min == c_arb

    @pytest.mark.parametrize("fn", [decomp_min, decomp_arb, decomp_arb_hybrid])
    def test_fraction_small_on_low_diameter_graph(self, fn):
        # random graphs at beta=0.1: balls engulf the graph, few cuts
        g = random_kregular(3_000, 5, seed=2)
        frac = mean_inter_fraction(g, fn, 0.1)
        assert frac <= 0.25

    def test_fraction_grows_with_beta(self):
        g = line_graph(3_000, seed=2)
        lo = mean_inter_fraction(g, decomp_arb, 0.05)
        hi = mean_inter_fraction(g, decomp_arb, 0.5)
        assert lo < hi


class TestDiameterBound:
    @pytest.mark.parametrize("fn", [decomp_min, decomp_arb, decomp_arb_hybrid])
    @pytest.mark.parametrize("beta", [0.1, 0.4])
    def test_radius_within_log_n_over_beta(self, fn, beta):
        g = line_graph(4_000, seed=3)
        for seed in range(4):
            dec = fn(g, beta=beta, seed=seed)
            radii = partition_radii(g, dec.labels)
            bound = np.log(g.num_vertices) / beta
            assert radii.max() <= 4.0 * bound

    def test_radius_shrinks_with_beta(self):
        g = line_graph(4_000, seed=4)
        r_small = np.mean(
            [
                partition_radii(g, decomp_arb(g, 0.05, seed=s).labels).max()
                for s in range(4)
            ]
        )
        r_large = np.mean(
            [
                partition_radii(g, decomp_arb(g, 0.5, seed=s).labels).max()
                for s in range(4)
            ]
        )
        assert r_large < r_small


class TestRoundsBound:
    @pytest.mark.parametrize("fn", [decomp_min, decomp_arb])
    def test_rounds_scale_as_log_n_over_beta(self, fn):
        g = grid3d(12, seed=1)
        beta = 0.2
        rounds = [fn(g, beta=beta, seed=s).num_rounds for s in range(4)]
        bound = np.log(g.num_vertices) / beta
        assert np.mean(rounds) <= 3.0 * bound


class TestDuplicateEdgeEffect:
    def test_duplicates_make_contraction_sharper_than_bound(self):
        """Figure 4's observation, quantified on a dense random graph."""
        from repro.decomp import contract

        g = random_kregular(2_000, 10, seed=5)
        beta = 0.4
        dec = decomp_arb(g, beta=beta, seed=1)
        kept = contract(dec, g.num_vertices, remove_duplicates=True)
        nodedup = contract(dec, g.num_vertices, remove_duplicates=False)
        assert kept.graph.num_directed < nodedup.graph.num_directed
        # with duplicates merged the drop beats the 2*beta bound comfortably
        assert kept.graph.num_edges < 2 * beta * g.num_edges
