"""Unit tests for the work/depth cost tracker."""

import pytest

from repro.pram.cost import (
    KINDS,
    CostTracker,
    current_tracker,
    tracking,
)


class TestCostTracker:
    def test_starts_empty(self):
        t = CostTracker()
        assert t.total_work() == 0.0
        assert t.total_depth() == 0.0
        assert t.buckets == {}

    def test_add_accumulates_work_and_depth(self):
        t = CostTracker()
        t.add("scan", work=10.0, depth=2.0)
        t.add("scan", work=5.0, depth=1.0)
        assert t.total_work() == 15.0
        assert t.total_depth() == 3.0

    def test_add_rejects_unknown_kind(self):
        t = CostTracker()
        with pytest.raises(ValueError, match="unknown cost kind"):
            t.add("warp-speed", work=1.0)

    def test_all_declared_kinds_accepted(self):
        t = CostTracker()
        for kind in KINDS:
            t.add(kind, work=1.0)
        assert t.total_work() == float(len(KINDS))

    def test_sync_charges_depth_only(self):
        t = CostTracker()
        t.sync()
        t.sync(depth=3.0)
        assert t.total_work() == 0.0
        assert t.total_depth() == 4.0
        assert t.sync_count == 2

    def test_default_phase_is_unphased(self):
        t = CostTracker()
        t.add("scan", work=1.0)
        assert ("unphased", "scan") in t.buckets

    def test_phase_labels_attribute_costs(self):
        t = CostTracker()
        with t.phase("init"):
            t.add("alloc", work=7.0)
        with t.phase("bfsMain"):
            t.add("gather", work=3.0, depth=1.0)
        assert t.work_by_phase() == {"init": 7.0, "bfsMain": 3.0}
        assert t.depth_by_phase()["bfsMain"] == 1.0

    def test_phases_nest_innermost_wins(self):
        t = CostTracker()
        with t.phase("outer"):
            with t.phase("inner"):
                t.add("scan", work=1.0)
            t.add("scan", work=2.0)
        assert t.work_by_phase() == {"inner": 1.0, "outer": 2.0}

    def test_phase_restored_after_exception(self):
        t = CostTracker()
        with pytest.raises(RuntimeError):
            with t.phase("doomed"):
                raise RuntimeError("boom")
        assert t.phase_label == "unphased"

    def test_work_by_kind(self):
        t = CostTracker()
        with t.phase("a"):
            t.add("scan", work=1.0)
        with t.phase("b"):
            t.add("scan", work=2.0)
            t.add("atomic", work=4.0)
        assert t.work_by_kind() == {"scan": 3.0, "atomic": 4.0}

    def test_phase_kind_views(self):
        t = CostTracker()
        with t.phase("p"):
            t.add("sort", work=6.0, depth=2.0)
        assert t.phase_kind_work() == {"p": {"sort": 6.0}}
        assert t.phase_kind_depth() == {"p": {"sort": 2.0}}

    def test_merge_folds_buckets_and_syncs(self):
        a = CostTracker()
        b = CostTracker()
        with a.phase("x"):
            a.add("scan", work=1.0)
        with b.phase("x"):
            b.add("scan", work=2.0, depth=1.0)
        b.sync()
        a.merge(b)
        assert a.work_by_phase()["x"] == 3.0
        assert a.sync_count == 1

    def test_snapshot_is_immutable_copy(self):
        t = CostTracker()
        t.add("scan", work=1.0)
        snap = t.snapshot()
        t.add("scan", work=1.0)
        assert snap[("unphased", "scan")] == (1.0, 0.0)

    def test_clear(self):
        t = CostTracker()
        t.add("scan", work=1.0)
        t.sync()
        t.clear()
        assert t.total_work() == 0.0
        assert t.sync_count == 0


class TestActiveTrackerStack:
    def test_no_active_tracker_discards(self):
        # Recording against the null tracker must not blow up nor leak.
        current_tracker().add("scan", work=100.0)
        assert current_tracker().total_work() == 0.0

    def test_null_tracker_still_validates_kinds(self):
        with pytest.raises(ValueError):
            current_tracker().add("bogus", work=1.0)

    def test_tracking_activates_and_restores(self):
        before = current_tracker()
        with tracking() as t:
            assert current_tracker() is t
            current_tracker().add("scan", work=2.0)
        assert t.total_work() == 2.0
        assert current_tracker() is before

    def test_tracking_nests(self):
        with tracking() as outer:
            outer_seen = current_tracker()
            with tracking() as inner:
                current_tracker().add("scan", work=5.0)
            assert current_tracker() is outer_seen
        assert inner.total_work() == 5.0
        assert outer.total_work() == 0.0

    def test_tracking_accepts_existing_tracker(self):
        t = CostTracker()
        with tracking(t) as active:
            assert active is t
            current_tracker().add("scan", work=1.0)
        assert t.total_work() == 1.0

    def test_tracking_restores_on_exception(self):
        with pytest.raises(ValueError):
            with tracking():
                raise ValueError("x")
        assert current_tracker().total_work() == 0.0
