"""Property-based tests for the spanning-forest extraction."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.connectivity import (
    decomp_spanning_forest,
    verify_spanning_forest,
)
from repro.graphs.builder import from_edges

COMMON = dict(
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


@st.composite
def graphs(draw, max_vertices=30, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_edges,
        )
    )
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    return from_edges(src, dst, num_vertices=n)


@settings(**COMMON)
@given(
    graph=graphs(),
    seed=st.integers(min_value=0, max_value=500),
    beta=st.floats(min_value=0.05, max_value=0.8),
)
def test_forest_always_valid(graph, seed, beta):
    for variant in ("min", "arb", "arb-hybrid"):
        src, dst = decomp_spanning_forest(
            graph, beta=beta, variant=variant, seed=seed
        )
        verify_spanning_forest(graph, src, dst)


@settings(**COMMON)
@given(graph=graphs(), seed=st.integers(min_value=0, max_value=500))
def test_forest_size_invariant(graph, seed):
    """|F| = n - c regardless of randomness."""
    from repro.analysis.verify import ground_truth_labels

    src, _ = decomp_spanning_forest(graph, beta=0.3, seed=seed)
    c = int(np.unique(ground_truth_labels(graph)).size) if graph.num_vertices else 0
    assert src.size == graph.num_vertices - c
