"""The runtime layer: ExecutionContext isolation, Session memo/pooling.

The refactor's acceptance bar lives here:

* **concurrency** — several :class:`~repro.runtime.session.Session`
  objects running simultaneously in a thread pool (different graphs,
  different seeds) must produce exactly the labelings and (work, depth)
  profiles that the same configurations produce serially.  Any
  cost-tracker cross-talk between threads — the failure mode the old
  global singleton stacks invited — shows up as a work/depth mismatch.
* **memoization** — a repeated plain run is a dictionary hit returning
  the *same* profile object; replacing the graph changes the CSR
  fingerprint and misses; rebuilding a byte-identical graph hits again.
* **deprecation shims** — each legacy accessor warns exactly once per
  process, and :meth:`ExecutionContext.activate` restores the previous
  context even when the body raises.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.analysis.verify import verify_labeling
from repro.errors import ParameterError
from repro.experiments.registry import build_graph
from repro.pram.cost import CostTracker
from repro.runtime.context import (
    ExecutionContext,
    _reset_deprecation_warnings,
    current_context,
    root_context,
)
from repro.runtime.session import (
    ConnectivityService,
    Session,
    execute_profiled,
)

#: Four distinct (graph, seed) cells for the thread-pool test — enough
#: that the pool genuinely interleaves runs on different inputs.
CONCURRENT_CONFIGS = [
    ("random", 3),
    ("rMat", 11),
    ("3D-grid", 5),
    ("line", 1),
]


def _run_config(gname: str, seed: int):
    """One fresh session run; returns (labels, work, depth, components)."""
    sess = Session(gname, scale="tiny", seed=seed)
    prof = sess.run()
    return (
        np.array(prof.result.labels, copy=True),
        prof.tracker.total_work(),
        prof.tracker.total_depth(),
        prof.result.num_components,
    )


class TestConcurrentSessions:
    def test_thread_pool_matches_serial_baseline(self):
        """4 sessions in 4 threads: correct labelings, isolated profiles."""
        baseline = {(g, s): _run_config(g, s) for g, s in CONCURRENT_CONFIGS}
        barrier = threading.Barrier(len(CONCURRENT_CONFIGS))

        def worker(config):
            gname, seed = config
            barrier.wait()  # maximize actual overlap between the runs
            return config, _run_config(gname, seed)

        with ThreadPoolExecutor(max_workers=len(CONCURRENT_CONFIGS)) as pool:
            results = dict(pool.map(worker, CONCURRENT_CONFIGS))

        for (gname, seed), (labels, work, depth, ncomp) in results.items():
            want_labels, want_work, want_depth, want_ncomp = baseline[(gname, seed)]
            assert np.array_equal(labels, want_labels), (gname, seed)
            # Bit-equal totals: a tracker shared across threads would
            # have accumulated another run's charges.
            assert work == want_work, (gname, seed)
            assert depth == want_depth, (gname, seed)
            assert ncomp == want_ncomp, (gname, seed)
            verify_labeling(build_graph(gname, "tiny"), labels)

    def test_profiles_are_distinct_trackers(self):
        sessions = [Session(g, scale="tiny", seed=s) for g, s in CONCURRENT_CONFIGS]
        with ThreadPoolExecutor(max_workers=len(sessions)) as pool:
            profiles = list(pool.map(lambda sess: sess.run(), sessions))
        trackers = [prof.tracker for prof in profiles]
        assert len({id(t) for t in trackers}) == len(trackers)
        for prof in profiles:
            assert prof.tracker.total_work() > 0.0

    def test_contexts_do_not_cross_talk(self):
        """Two activated contexts in two threads record independently."""
        barrier = threading.Barrier(2)

        def worker(charge: float) -> float:
            ctx = current_context().child(tracker=CostTracker())
            with ctx.activate():
                barrier.wait()
                current_context().tracker.add("scan", work=charge)
                barrier.wait()
                return current_context().tracker.total_work()

        with ThreadPoolExecutor(max_workers=2) as pool:
            totals = list(pool.map(worker, [7.0, 19.0]))
        assert totals == [7.0, 19.0]


class TestSessionMemo:
    def test_repeat_run_hits(self):
        sess = Session("random", scale="tiny", seed=2)
        first = sess.run()
        second = sess.run()
        assert second is first  # a memo hit returns the cached profile
        assert sess.stats == {"hits": 1, "misses": 1}

    def test_distinct_seeds_miss(self):
        sess = Session("random", scale="tiny", seed=2)
        sess.run()
        sess.run(seed=3)
        assert sess.stats == {"hits": 0, "misses": 2}

    def test_graph_change_invalidates(self):
        sess = Session("random", scale="tiny", seed=2)
        first = sess.run()
        sess.set_graph("rMat", scale="tiny")
        other = sess.run()
        assert other is not first
        assert sess.stats == {"hits": 0, "misses": 2}

    def test_identical_rebuild_still_hits(self):
        # The memo keys on the CSR fingerprint, not object identity: a
        # byte-identical rebuild of the same graph recalls the labeling.
        sess = Session("random", scale="tiny", seed=2)
        first = sess.run()
        sess.set_graph(build_graph("random", "tiny"), graph_name="random")
        assert sess.run() is first
        assert sess.stats == {"hits": 1, "misses": 1}

    def test_fault_and_extra_kwargs_bypass_memo(self):
        sess = Session("random", scale="tiny", seed=2)
        sess.run()
        sess.run()  # hit
        prof = sess.run("decomp-arb-CC", schedule_mode="permutation")
        assert prof is not None
        assert sess.stats == {"hits": 1, "misses": 1}  # bypass counts neither

    def test_queries_share_one_labeling(self):
        sess = Session("random", scale="tiny", seed=2)
        labels = sess.components()
        sizes = sess.component_sizes()
        assert sum(sizes.values()) == sess.graph.num_vertices
        assert sess.num_components() == len(sizes)
        u, v = 0, int(np.argmax(labels == labels[0]))
        assert sess.connected(u, v) is True
        many = sess.connected(np.array([0, 1]), np.array([0, 1]))
        assert many.tolist() == [True, True]
        # All of the above resolved against one memoized run.
        assert sess.stats["misses"] == 1


class TestExecuteProfiled:
    def test_returns_fresh_profile(self):
        graph = build_graph("random", "tiny")
        prof = execute_profiled(
            "decomp-arb-CC", graph, graph_name="random", beta=0.2, seed=1
        )
        assert prof.algorithm == "decomp-arb-CC"
        assert prof.tracker.total_work() > 0.0
        assert prof.wall_seconds > 0.0
        verify_labeling(graph, prof.result.labels)

    def test_caller_tracker_is_used(self):
        graph = build_graph("random", "tiny")
        mine = CostTracker()
        prof = execute_profiled("decomp-arb-CC", graph, tracker=mine, beta=0.2, seed=1)
        assert prof.tracker is mine
        assert mine.total_work() > 0.0

    def test_runs_do_not_leak_into_ambient_context(self):
        before = current_context().tracker
        execute_profiled(
            "decomp-arb-CC", build_graph("random", "tiny"), beta=0.2, seed=1
        )
        assert current_context().tracker is before

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            execute_profiled("no-such-CC", build_graph("random", "tiny"))


class TestConnectivityService:
    def test_sessions_are_cached_per_graph(self):
        svc = ConnectivityService(scale="tiny")
        assert len(svc) == 0
        sess = svc.session("random")
        assert svc.session("random") is sess
        assert len(svc) == 1 and list(svc) == ["random"]
        svc.close("random")
        assert len(svc) == 0

    def test_queries_delegate_and_memoize(self):
        svc = ConnectivityService(scale="tiny")
        labels = svc.components("random")
        assert svc.connected("random", 0, 0) is True
        sizes = svc.component_sizes("random")
        assert sum(sizes.values()) == labels.size
        assert svc.session("random").stats["misses"] == 1

    def test_open_registers_external_graph(self):
        svc = ConnectivityService(scale="tiny")
        graph = build_graph("line", "tiny")
        sess = svc.open("mine", graph)
        assert svc.session("mine") is sess
        assert svc.components("mine").size == graph.num_vertices


class TestInflightCoalescing:
    """The per-key in-flight table must be cleared on EVERY exit path.

    Regression tests for a leak where the pooled-workspace claim ran
    after the in-flight registration but outside the try/finally: a
    claim failure left the key's event in ``_inflight`` forever, and
    every later caller of the same key deadlocked waiting on it.
    """

    def test_failed_claim_clears_inflight_entry(self):
        sess = Session("random", scale="tiny", seed=2)

        def exploding_claim():
            raise RuntimeError("pool boom")

        original = sess._claim_pool
        sess._claim_pool = exploding_claim
        try:
            with pytest.raises(RuntimeError, match="pool boom"):
                sess.run()
        finally:
            sess._claim_pool = original
        # Pre-fix this assertion fails (and the run() below would then
        # deadlock on the leaked event — assert first, run second).
        assert sess._inflight == {}
        prof = sess.run()
        assert prof.tracker.total_work() > 0.0
        assert sess.stats == {"hits": 0, "misses": 1}

    def test_waiter_recovers_when_first_runner_fails(self, monkeypatch):
        """Two threads, same key: the first fails, the second computes."""
        import repro.runtime.session as session_mod

        sess = Session("random", scale="tiny", seed=2)
        real = session_mod.execute_profiled
        first_entered = threading.Event()
        release_first = threading.Event()
        attempts = []

        def flaky(*args, **kwargs):
            attempts.append(threading.get_ident())
            if len(attempts) == 1:
                first_entered.set()
                assert release_first.wait(10)
                raise RuntimeError("first run dies")
            return real(*args, **kwargs)

        monkeypatch.setattr(session_mod, "execute_profiled", flaky)
        errors, profiles = [], []

        def owner():
            try:
                sess.run()
            except RuntimeError as exc:
                errors.append(exc)

        def waiter():
            profiles.append(sess.run())

        t_owner = threading.Thread(target=owner)
        t_owner.start()
        assert first_entered.wait(10)  # owner holds the in-flight entry
        t_waiter = threading.Thread(target=waiter)
        t_waiter.start()
        # Give the waiter a moment to park on the in-flight event, then
        # let the owner fail; the waiter must wake, become the next
        # owner, and compute the labeling itself.
        deadline = time.monotonic() + 10
        while not sess._inflight and time.monotonic() < deadline:
            time.sleep(0.001)
        release_first.set()
        t_owner.join(10)
        t_waiter.join(10)
        assert not t_owner.is_alive() and not t_waiter.is_alive()
        assert len(errors) == 1 and "first run dies" in str(errors[0])
        assert len(profiles) == 1
        assert profiles[0].tracker.total_work() > 0.0
        assert sess._inflight == {}
        # The waiter's successful compute entered the memo.
        assert sess.run() is profiles[0]


class TestContextDiscipline:
    def test_activate_restores_on_exception(self):
        before = current_context()
        ctx = before.child(tracker=CostTracker())
        with pytest.raises(RuntimeError):
            with ctx.activate():
                assert current_context() is ctx
                raise RuntimeError("boom")
        assert current_context() is before

    def test_root_context_is_process_wide_default(self):
        assert current_context() is root_context()
        with root_context().child().activate():
            assert current_context() is not root_context()
        assert current_context() is root_context()

    def test_child_seed_derives_fresh_rng(self):
        a = ExecutionContext(seed=5)
        b = a.child(seed=9)
        assert b.seed == 9
        assert a.rng is not b.rng


class TestDeprecatedAccessors:
    def test_each_accessor_warns_exactly_once_per_process(self):
        from repro.engine.backend import set_default_backend
        from repro.pram.cost import current_tracker
        from repro.pram.sanitizer import active_sanitizer
        from repro.resilience.faults import active_fault_plan

        _reset_deprecation_warnings()
        shims = [
            ("current_tracker", current_tracker),
            ("active_sanitizer", active_sanitizer),
            ("active_fault_plan", active_fault_plan),
        ]
        for name, shim in shims:
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                shim()
                shim()
            deps = [w for w in rec if issubclass(w.category, DeprecationWarning)]
            assert len(deps) == 1, name
            assert name in str(deps[0].message)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            previous = set_default_backend("reference")
            set_default_backend(previous)
        deps = [w for w in rec if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1
        assert "set_default_backend" in str(deps[0].message)

    def test_shims_still_read_the_context(self):
        from repro.pram.cost import current_tracker

        mine = CostTracker()
        with current_context().child(tracker=mine).activate():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                assert current_tracker() is mine
