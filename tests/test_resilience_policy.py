"""Tests for retry policies, round budgets and the structured errors."""

import pytest

from repro.errors import (
    CheckpointError,
    ConvergenceError,
    GraphFormatError,
    ParameterError,
    ReproError,
    ResilienceExhaustedError,
    VerificationError,
)
from repro.resilience import (
    DECOMP_ROUND_FACTOR,
    DECOMP_ROUND_SLACK,
    RetryPolicy,
    RoundBudget,
)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert list(policy.attempts()) == [0, 1, 2]

    def test_seed_rotation(self):
        policy = RetryPolicy(seed_stride=100)
        assert policy.seed_for(7, 0) == 7
        assert policy.seed_for(7, 1) == 107
        assert policy.seed_for(7, 2) == 207

    def test_default_stride_avoids_iteration_stream(self):
        # decomp_cc derives per-iteration seeds with stride 1000003;
        # the rotation stride must not be a multiple of it (or vice
        # versa), or a rotated attempt could replay iteration streams.
        policy = RetryPolicy()
        assert policy.seed_stride % 1000003 != 0
        assert 1000003 % policy.seed_stride != 0

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=100.0, backoff_factor=3.0)
        assert policy.backoff_cost(0) == 0.0
        assert policy.backoff_cost(1) == 100.0
        assert policy.backoff_cost(2) == 300.0
        assert policy.backoff_cost(3) == 900.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": -1},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            RetryPolicy(**kwargs)


class TestRoundBudget:
    def test_check_under_budget_is_silent(self):
        budget = RoundBudget(max_rounds=10, algorithm="test")
        for r in range(11):
            budget.check(r)  # 10 == max_rounds is still legal

    def test_check_over_budget_raises_structured(self):
        budget = RoundBudget(max_rounds=10, algorithm="decomp-arb")
        with pytest.raises(ConvergenceError) as excinfo:
            budget.check(11)
        err = excinfo.value
        assert err.algorithm == "decomp-arb"
        assert err.rounds_used == 11
        assert err.budget == 10
        assert "decomp-arb" in str(err)

    def test_remaining_clamps_at_zero(self):
        budget = RoundBudget(max_rounds=5)
        assert budget.remaining(2) == 3
        assert budget.remaining(9) == 0

    def test_for_decomposition_scales_with_log_n_over_beta(self):
        small = RoundBudget.for_decomposition(1_000, beta=0.2)
        big = RoundBudget.for_decomposition(1_000_000, beta=0.2)
        tight = RoundBudget.for_decomposition(1_000, beta=0.05)
        assert big.max_rounds > small.max_rounds
        assert tight.max_rounds > small.max_rounds
        # Sanity-check the documented constants are what is in force.
        assert small.max_rounds >= DECOMP_ROUND_SLACK
        assert DECOMP_ROUND_FACTOR >= 2

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ParameterError):
            RoundBudget(max_rounds=0)

    def test_decomposition_never_trips_on_healthy_runs(self):
        # The default budget must be far above real round counts.
        from repro.decomp import decomp_arb
        from repro.graphs import line_graph

        graph = line_graph(2_000, seed=1)
        decomposition = decomp_arb(graph, beta=0.2, seed=1)
        budget = RoundBudget.for_decomposition(2_000, beta=0.2)
        assert decomposition.num_rounds < budget.max_rounds


class TestStructuredErrors:
    def test_convergence_error_message_only_back_compat(self):
        err = ConvergenceError("legacy message")
        assert str(err) == "legacy message"
        assert err.algorithm is None
        assert err.rounds_used is None
        assert err.budget is None

    def test_convergence_error_composes_message(self):
        err = ConvergenceError(algorithm="pointer-jump", rounds_used=99, budget=64)
        assert "pointer-jump" in str(err)
        assert "99" in str(err) and "64" in str(err)

    def test_verification_error_reason(self):
        assert VerificationError("msg").reason is None
        assert VerificationError("msg", reason="shape").reason == "shape"

    def test_graph_format_error_line_info(self):
        plain = GraphFormatError("bad file")
        assert plain.line_number is None and plain.line_text is None
        located = GraphFormatError("bad file", line_number=3, line_text="a b c")
        assert located.line_number == 3
        assert located.line_text == "a b c"
        assert "line 3" in str(located) and "a b c" in str(located)

    def test_hierarchy(self):
        # Everything the CLI converts to exit code 2 derives from
        # ReproError; parameter/spec errors stay ValueErrors too.
        for cls in (
            CheckpointError,
            ConvergenceError,
            GraphFormatError,
            ParameterError,
            ResilienceExhaustedError,
            VerificationError,
        ):
            assert issubclass(cls, ReproError)
        assert issubclass(ParameterError, ValueError)

    def test_resilience_exhausted_carries_failures(self):
        err = ResilienceExhaustedError("gave up", failures=[1, 2])
        assert err.failures == [1, 2]
        assert ResilienceExhaustedError("gave up").failures == []
