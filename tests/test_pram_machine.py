"""Unit tests for the machine timing model."""


import pytest

from repro.errors import ParameterError
from repro.pram.cost import CostTracker
from repro.pram.machine import (
    PAPER_MACHINE,
    MachineModel,
    paper_thread_sweep,
    parse_thread_spec,
)


def profile(kind="scan", work=1e6, depth=0.0) -> CostTracker:
    t = CostTracker()
    t.add(kind, work=work, depth=depth)
    return t


class TestParseThreadSpec:
    def test_plain_int(self):
        assert parse_thread_spec(40) == (40, False)

    def test_hyper_string(self):
        assert parse_thread_spec("40h") == (40, True)

    def test_plain_string(self):
        assert parse_thread_spec("8") == (8, False)

    def test_case_and_whitespace(self):
        assert parse_thread_spec(" 16H ") == (16, True)

    @pytest.mark.parametrize("bad", [0, -1, "0h", "h", "", "4.5", "ha", True])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ParameterError):
            parse_thread_spec(bad)

    def test_paper_sweep_shape(self):
        sweep = paper_thread_sweep()
        assert sweep[0] == 1
        assert sweep[-1] == "40h"
        assert 40 in sweep


class TestMachineModel:
    def test_single_thread_time_is_work_times_cost(self):
        m = MachineModel(threads=1)
        t = profile("scan", work=1e9)
        expected = 1e9 * m.kind_cost_ns["scan"] * 1e-9
        assert m.time_seconds(t) == pytest.approx(expected)

    def test_work_divides_by_threads(self):
        t = profile("scan", work=1e9)
        t1 = MachineModel(threads=1).time_seconds(t)
        t8 = MachineModel(threads=8).time_seconds(t)
        assert t1 / t8 == pytest.approx(8.0)

    def test_bandwidth_cap_limits_speedup(self):
        t = profile("atomic", work=1e9)
        m1 = MachineModel(threads=1)
        m80 = MachineModel(threads=40, hyperthreaded=True)
        speedup = m1.time_seconds(t) / m80.time_seconds(t)
        assert speedup == pytest.approx(m80.kind_cap["atomic"])

    def test_seq_work_never_divides(self):
        t = profile("seq", work=1e9)
        t1 = MachineModel(threads=1).time_seconds(t)
        t40 = PAPER_MACHINE.time_seconds(t)
        assert t1 == pytest.approx(t40)

    def test_depth_charged_at_every_thread_count(self):
        t = profile("scan", work=0.0, depth=1e6)
        m1 = MachineModel(threads=1)
        m40 = MachineModel(threads=40)
        assert m1.time_seconds(t) == pytest.approx(1e6 * m1.depth_cost_ns * 1e-9)
        assert m1.time_seconds(t) == pytest.approx(m40.time_seconds(t))

    def test_hyperthreading_adds_fractional_throughput(self):
        m = MachineModel(threads=40, hyperthreaded=True, ht_yield=0.25)
        assert m.effective_parallelism == pytest.approx(50.0)
        m_plain = MachineModel(threads=40)
        assert m_plain.effective_parallelism == pytest.approx(40.0)

    def test_label(self):
        assert MachineModel(threads=40, hyperthreaded=True).label == "40h"
        assert MachineModel(threads=8).label == "8"

    def test_with_threads_roundtrip(self):
        m = PAPER_MACHINE.with_threads(4)
        assert m.threads == 4 and not m.hyperthreaded
        m2 = m.with_threads("16h")
        assert m2.threads == 16 and m2.hyperthreaded
        # constants survive the copy
        assert m2.kind_cost_ns == PAPER_MACHINE.kind_cost_ns

    def test_rejects_bad_threads(self):
        with pytest.raises(ParameterError):
            MachineModel(threads=0)

    def test_rejects_bad_ht_yield(self):
        with pytest.raises(ParameterError):
            MachineModel(threads=2, ht_yield=1.5)

    def test_rejects_missing_kind_constants(self):
        with pytest.raises(ParameterError, match="missing kinds"):
            MachineModel(threads=2, kind_cost_ns={"scan": 1.0})

    def test_phase_seconds_partitions_total(self):
        t = CostTracker()
        with t.phase("a"):
            t.add("scan", work=1e6, depth=10.0)
        with t.phase("b"):
            t.add("gather", work=2e6, depth=20.0)
        m = PAPER_MACHINE
        per_phase = m.phase_seconds(t)
        assert set(per_phase) == {"a", "b"}
        assert sum(per_phase.values()) == pytest.approx(m.time_seconds(t))

    def test_self_relative_speedup_in_band_for_work_heavy_profile(self):
        # A profile shaped like a decomposition run: mixed kinds, small
        # depth — the speedup must fall in a plausible parallel band.
        t = CostTracker()
        t.add("gather", work=4e6, depth=100.0)
        t.add("atomic", work=5e5, depth=100.0)
        t.add("scan", work=3e6, depth=2000.0)
        s = PAPER_MACHINE.self_relative_speedup(t)
        assert 10.0 < s < 45.0

    def test_speedup_over(self):
        t = profile("scan", work=1e9)
        assert PAPER_MACHINE.speedup_over(t, MachineModel(threads=1)) > 1.0

    def test_sweep_monotone_for_divisible_work(self):
        t = profile("scan", work=1e9)
        sweep = MachineModel().sweep_seconds(t)
        times = list(sweep.values())
        assert all(a >= b for a, b in zip(times, times[1:]))
        assert list(sweep)[-1] == "40h"

    def test_sweep_flat_for_seq_work(self):
        t = profile("seq", work=1e8)
        sweep = MachineModel().sweep_seconds(t)
        vals = list(sweep.values())
        assert max(vals) == pytest.approx(min(vals))
