"""Tests for the decomposition-based spanning forest extraction."""

import numpy as np
import pytest

from repro.connectivity import (
    decomp_spanning_forest,
    partition_parents,
    serial_spanning_forest,
    verify_spanning_forest,
)
from repro.decomp import decomp_arb
from repro.errors import ParameterError, VerificationError
from repro.graphs.generators import (
    clique,
    disjoint_union_edges,
    empty_graph,
    grid3d,
    line_graph,
    random_kregular,
    star_graph,
)

from tests.conftest import zoo_params

VARIANTS = ["min", "arb", "arb-hybrid"]


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("graph", zoo_params())
def test_forest_valid_on_zoo(variant, graph):
    src, dst = decomp_spanning_forest(graph, beta=0.3, variant=variant, seed=3)
    verify_spanning_forest(graph, src, dst)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_forest_seed_robust(seed, medium_random):
    src, dst = decomp_spanning_forest(medium_random, beta=0.2, seed=seed)
    verify_spanning_forest(medium_random, src, dst)


@pytest.mark.parametrize("beta", [0.05, 0.3, 0.7])
def test_forest_beta_robust(beta):
    g = grid3d(7, seed=2)
    src, dst = decomp_spanning_forest(g, beta=beta, seed=1)
    verify_spanning_forest(g, src, dst)


def test_forest_size_matches_serial(medium_random):
    src, _ = decomp_spanning_forest(medium_random, beta=0.2, seed=1)
    _, serial_forest = serial_spanning_forest(medium_random)
    assert src.size == len(serial_forest)


def test_forest_empty_graph():
    src, dst = decomp_spanning_forest(empty_graph(5), beta=0.2)
    assert src.size == 0 and dst.size == 0


def test_forest_unknown_variant():
    with pytest.raises(ParameterError):
        decomp_spanning_forest(clique(3), variant="bogus")


class TestPartitionParents:
    def test_single_partition_is_bfs_tree(self):
        g = grid3d(4)
        labels = np.zeros(g.num_vertices, dtype=np.int64)
        parents = partition_parents(g, labels)
        assert parents[0] == -1
        assert (parents[1:] >= 0).all()
        # parents must be real neighbors
        for v in range(1, g.num_vertices):
            assert parents[v] in g.neighbors(v)

    def test_all_singletons_no_parents(self):
        g = line_graph(6)
        parents = partition_parents(g, np.arange(6))
        assert (parents == -1).all()

    def test_respects_partition_boundaries(self):
        g = line_graph(10)
        labels = np.array([0] * 5 + [5] * 5)
        labels[5] = 5
        parents = partition_parents(g, labels)
        for v in range(10):
            if parents[v] >= 0:
                assert labels[parents[v]] == labels[v]

    def test_after_real_decomposition(self):
        g = random_kregular(400, 4, seed=2)
        dec = decomp_arb(g, beta=0.3, seed=1)
        parents = partition_parents(g, dec.labels)
        centers = np.unique(dec.labels)
        assert (parents[centers] == -1).all()
        non_centers = np.setdiff1d(np.arange(g.num_vertices), centers)
        assert (parents[non_centers] >= 0).all()


class TestVerifySpanningForest:
    def test_rejects_fake_edge(self):
        g = line_graph(4)
        with pytest.raises(VerificationError, match="not a graph edge"):
            verify_spanning_forest(g, np.array([0]), np.array([3]))

    def test_rejects_wrong_size(self):
        g = line_graph(4)
        with pytest.raises(VerificationError, match="expected n - c"):
            verify_spanning_forest(g, np.array([0]), np.array([1]))

    def test_rejects_cycle(self):
        g = clique(3)
        # 3 edges on 3 vertices with 1 component: wrong count triggers
        # first; craft a 4-clique with a cycle of 3 and a repeat
        g = clique(4)
        with pytest.raises(VerificationError):
            verify_spanning_forest(
                g, np.array([0, 1, 2]), np.array([1, 2, 0])
            )

    def test_accepts_serial_forest(self):
        g = disjoint_union_edges([clique(5), star_graph(4)])
        _, forest = serial_spanning_forest(g)
        src = np.array([u for u, _ in forest])
        dst = np.array([v for _, v in forest])
        verify_spanning_forest(g, src, dst)


class TestRepresentativeEdges:
    def test_representative_edges_are_real(self):
        from repro.decomp import contract

        g = random_kregular(300, 4, seed=5)
        dec = decomp_arb(g, beta=0.5, seed=2)
        con = contract(dec, g.num_vertices)
        if con.edge_pairs.size:
            k = con.num_components
            src_comp = con.edge_pairs // k
            dst_comp = con.edge_pairs % k
            rep_u, rep_v = con.representative_edge(src_comp, dst_comp)
            # representatives must be real edges whose endpoints lie in
            # the claimed components
            edges = set(zip(*[a.tolist() for a in g.edge_array()]))
            v2c = con.vertex_to_component
            for u, v, cu, cv in zip(
                rep_u.tolist(), rep_v.tolist(), src_comp.tolist(), dst_comp.tolist()
            ):
                assert (u, v) in edges
                assert v2c[u] == cu and v2c[v] == cv

    def test_missing_pair_raises(self):
        from repro.decomp import contract
        from repro.errors import GraphFormatError

        g = disjoint_union_edges([clique(3), clique(3)])
        dec = decomp_arb(g, beta=0.2, seed=1)
        con = contract(dec, g.num_vertices)
        if con.num_components >= 2 and con.edge_pairs.size == 0:
            with pytest.raises(GraphFormatError):
                con.representative_edge(np.array([0]), np.array([1]))
