"""Unit tests for CRCW atomics emulation and the phase-concurrent hash table."""

import numpy as np
import pytest

from repro.pram.cost import tracking
from repro.primitives.atomics import (
    PAIR_SHIFT,
    decode_pair,
    encode_pair,
    first_winner,
    write_min,
)
from repro.primitives.hashing import HashTable, dedup


class TestEncodePair:
    def test_roundtrip(self):
        p = np.array([0, 5, 100])
        x = np.array([7, 0, 3])
        pr, px = decode_pair(encode_pair(p, x))
        assert pr.tolist() == p.tolist()
        assert px.tolist() == x.tolist()

    def test_lexicographic_order(self):
        # smaller priority always wins; ties break by smaller payload
        assert encode_pair(np.array([1]), np.array([999]))[0] < encode_pair(
            np.array([2]), np.array([0])
        )[0]
        assert encode_pair(np.array([1]), np.array([3]))[0] < encode_pair(
            np.array([1]), np.array([4])
        )[0]

    def test_bounds_checked(self):
        big = np.array([1 << PAIR_SHIFT])
        with pytest.raises(ValueError):
            encode_pair(big, np.array([0]))
        with pytest.raises(ValueError):
            encode_pair(np.array([0]), big)
        with pytest.raises(ValueError):
            encode_pair(np.array([-1]), np.array([0]))

    def test_empty(self):
        empty = np.array([], dtype=np.int64)
        assert encode_pair(empty, empty).size == 0


class TestWriteMin:
    def test_minimum_survives_conflicts(self):
        dest = np.full(4, 50, dtype=np.int64)
        write_min(dest, np.array([1, 1, 1, 3]), np.array([9, 2, 7, 60]))
        assert dest.tolist() == [50, 2, 50, 50]

    def test_no_write_when_larger(self):
        dest = np.array([5], dtype=np.int64)
        write_min(dest, np.array([0]), np.array([9]))
        assert dest[0] == 5

    def test_empty_batch(self):
        dest = np.array([1], dtype=np.int64)
        write_min(dest, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert dest[0] == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            write_min(np.zeros(2, dtype=np.int64), np.array([0]), np.array([1, 2]))

    def test_matches_sequential_semantics(self):
        rng = np.random.default_rng(0)
        dest = np.full(20, 10**6, dtype=np.int64)
        idx = rng.integers(0, 20, size=500)
        vals = rng.integers(0, 10**6, size=500)
        expected = dest.copy()
        for i, v in zip(idx, vals):
            expected[i] = min(expected[i], v)
        write_min(dest, idx, vals)
        assert np.array_equal(dest, expected)

    def test_charges_atomic_work(self):
        with tracking() as t:
            write_min(np.zeros(4, dtype=np.int64), np.array([0, 1]), np.array([1, 2]))
        assert t.work_by_kind().get("atomic") == 2.0


class TestFirstWinner:
    def test_one_winner_per_destination(self):
        pos, dests = first_winner(np.array([5, 3, 5, 3, 3, 7]))
        assert dests.tolist() == [3, 5, 7]
        # winner of 3 is index 1, of 5 is index 0, of 7 is index 5
        assert pos.tolist() == [1, 0, 5]

    def test_empty(self):
        pos, dests = first_winner(np.array([], dtype=np.int64))
        assert pos.size == 0 and dests.size == 0

    def test_all_same_destination(self):
        pos, dests = first_winner(np.full(10, 4))
        assert dests.tolist() == [4]
        assert pos.tolist() == [0]

    def test_all_distinct(self):
        pos, dests = first_winner(np.array([2, 0, 1]))
        assert sorted(pos.tolist()) == [0, 1, 2]
        assert dests.tolist() == [0, 1, 2]


class TestHashTable:
    def test_insert_reports_new_vs_duplicate(self):
        t = HashTable(capacity=8)
        first = t.insert(np.array([1, 2, 3]))
        assert first.tolist() == [True, True, True]
        second = t.insert(np.array([2, 4]))
        assert second.tolist() == [False, True]

    def test_duplicates_within_one_batch(self):
        t = HashTable(capacity=8)
        mask = t.insert(np.array([7, 7, 7, 8]))
        assert mask.sum() == 2  # one 7, one 8
        assert sorted(t.contents().tolist()) == [7, 8]

    def test_contents_match_distinct_inserts(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1000, size=5000)
        t = HashTable(capacity=keys.size)
        t.insert(keys)
        assert sorted(t.contents().tolist()) == sorted(set(keys.tolist()))

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            HashTable(capacity=4).insert(np.array([-1]))

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            HashTable(capacity=-1)

    def test_empty_insert(self):
        t = HashTable(capacity=4)
        assert t.insert(np.array([], dtype=np.int64)).size == 0
        assert t.contents().size == 0

    def test_load_factor_at_most_half(self):
        t = HashTable(capacity=100)
        assert t.size >= 200

    def test_adversarial_collisions_converge(self):
        # keys engineered to collide: sequential values in a big table
        # hash apart, so force collisions via capacity-1 table of many
        # equal-slot candidates by inserting many keys into minimum size.
        t = HashTable(capacity=64, seed=1)
        keys = np.arange(64, dtype=np.int64)
        mask = t.insert(keys)
        assert mask.all()
        assert sorted(t.contents().tolist()) == list(range(64))


class TestDedup:
    def test_basic(self):
        assert sorted(dedup(np.array([5, 5, 3, 9, 3])).tolist()) == [3, 5, 9]

    def test_empty(self):
        assert dedup(np.array([], dtype=np.int64)).size == 0

    def test_no_duplicates_input(self):
        keys = np.arange(100, dtype=np.int64)
        assert sorted(dedup(keys).tolist()) == list(range(100))

    def test_all_same(self):
        assert dedup(np.full(1000, 13)).tolist() == [13]

    def test_matches_numpy_unique_randomized(self):
        rng = np.random.default_rng(3)
        for trial in range(5):
            keys = rng.integers(0, 200, size=2000)
            got = np.sort(dedup(keys, seed=trial))
            assert np.array_equal(got, np.unique(keys))

    def test_charges_hash_work(self):
        with tracking() as t:
            dedup(np.arange(100, dtype=np.int64))
        assert t.work_by_kind().get("hash", 0.0) >= 100.0
