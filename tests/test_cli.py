"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "serial-SF", "petersen"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quantum-CC", "line"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "list"])


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "decomp-arb-CC" in out
        assert "com-Orkut" in out
        assert "Table 2" in out

    def test_run_decomp(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "decomp-arb-CC", "line",
            "--beta", "0.1", "--seed", "3",
        )
        assert code == 0
        assert "components : 1" in out
        assert "verified   : OK" in out
        assert "T(   1)" in out and "T( 40h)" in out

    def test_run_baseline_no_verify(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "serial-SF", "3D-grid", "--no-verify"
        )
        assert code == 0
        assert "components : 1" in out
        assert "verified" not in out

    def test_run_custom_threads(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "multistep-CC", "random",
            "--threads", "1", "8", "40h",
        )
        assert code == 0
        assert "T(   8)" in out

    def test_decompose(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "decompose", "3D-grid", "--beta", "0.3"
        )
        assert code == 0
        assert "inter-edge fraction" in out
        assert "max radius" in out

    def test_forest(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "forest", "random")
        assert code == 0
        assert "forest edges" in out
        assert "verified" in out

    def test_table1(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "table1")
        assert code == 0
        assert "Input Graph" in out
        assert "line" in out

    def test_table2_subset_runs(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "table2")
        assert code == 0
        assert "Implementation" in out
        assert "decomp-arb-hybrid-CC" in out

    @pytest.mark.parametrize("number", ["3", "4"])
    def test_figures_on_tiny_graph(self, capsys, number):
        code, out = run_cli(
            capsys, "--scale", "tiny", "figure", number, "--graph", "line"
        )
        assert code == 0
        assert "#" in out  # ascii bars rendered

    def test_figure5(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "figure", "5")
        assert code == 0
        assert "bfsPhase1" in out
