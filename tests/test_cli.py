"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "serial-SF", "petersen"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quantum-CC", "line"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "list"])


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "decomp-arb-CC" in out
        assert "com-Orkut" in out
        assert "Table 2" in out

    def test_run_decomp(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "decomp-arb-CC", "line",
            "--beta", "0.1", "--seed", "3",
        )
        assert code == 0
        assert "components : 1" in out
        assert "verified   : OK" in out
        assert "T(   1)" in out and "T( 40h)" in out

    def test_run_baseline_no_verify(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "serial-SF", "3D-grid", "--no-verify"
        )
        assert code == 0
        assert "components : 1" in out
        assert "verified" not in out

    def test_run_custom_threads(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "multistep-CC", "random",
            "--threads", "1", "8", "40h",
        )
        assert code == 0
        assert "T(   8)" in out

    def test_decompose(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "decompose", "3D-grid", "--beta", "0.3"
        )
        assert code == 0
        assert "inter-edge fraction" in out
        assert "max radius" in out

    def test_forest(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "forest", "random")
        assert code == 0
        assert "forest edges" in out
        assert "verified" in out

    def test_table1(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "table1")
        assert code == 0
        assert "Input Graph" in out
        assert "line" in out

    def test_table2_subset_runs(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "table2")
        assert code == 0
        assert "Implementation" in out
        assert "decomp-arb-hybrid-CC" in out

    @pytest.mark.parametrize("number", ["3", "4"])
    def test_figures_on_tiny_graph(self, capsys, number):
        code, out = run_cli(
            capsys, "--scale", "tiny", "figure", number, "--graph", "line"
        )
        assert code == 0
        assert "#" in out  # ascii bars rendered

    def test_figure5(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "figure", "5")
        assert code == 0
        assert "bfsPhase1" in out


class TestErrorPaths:
    """Shell contract: domain errors are one line on stderr, exit 2."""

    def run_cli_full(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_unknown_algorithm_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--scale", "tiny", "run", "quantum-CC", "line"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_unknown_graph_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--scale", "tiny", "run", "serial-SF", "petersen"])
        assert excinfo.value.code == 2

    def test_repro_error_is_one_line_no_traceback(self, capsys):
        # --resume without --checkpoint raises a ParameterError inside
        # the command; main() must turn it into the one-line contract.
        code, out, err = self.run_cli_full(
            capsys, "--scale", "tiny", "table2", "--resume"
        )
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_checkpoint_meta_mismatch_exits_2(self, capsys, tmp_path):
        from repro.resilience import SweepCheckpoint

        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path, meta={"scale": "tiny", "beta": 0.2, "seed": 1}).save()
        code, out, err = self.run_cli_full(
            capsys, "--scale", "tiny", "table2",
            "--checkpoint", str(path), "--resume", "--beta", "0.5",
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "parameters" in err
        assert "Traceback" not in err

    def test_bad_fault_spec_exits_2(self, capsys):
        code, out, err = self.run_cli_full(
            capsys, "--scale", "tiny", "run", "decomp-arb-CC", "line",
            "--inject-fault", "warp_core_breach",
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "warp_core_breach" in err


class TestResilienceOptions:
    def test_run_with_fault_injection_recovers(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "decomp-arb-CC", "line",
            "--inject-fault", "cas_flip:p=1.0,max_fires=1000000",
            "--retries", "2",
        )
        assert code == 0
        assert "attempts   :" in out
        assert "verified   : OK" in out

    def test_run_reports_retry_on_detected_fault(self, capsys):
        # line [tiny] is permuted, so hit a random-vertex drop instead
        # of a targeted one; probability 1 on every round guarantees a
        # detectable hole on the first (sabotaged) attempt.
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "decomp-arb-CC", "3D-grid",
            "--inject-fault", "drop_frontier:vertices=10|11|12",
            "--retries", "2",
        )
        assert code == 0
        assert "verified   : OK" in out

    def test_table2_checkpoint_resume_cycle(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        code, out = run_cli(
            capsys, "--scale", "tiny", "table2", "--checkpoint", str(path)
        )
        assert code == 0
        assert path.exists()
        assert "computed, 0 from checkpoint" in out

        code, out = run_cli(
            capsys, "--scale", "tiny", "table2",
            "--checkpoint", str(path), "--resume",
        )
        assert code == 0
        assert "cells      : 0 computed" in out


class TestFlagValidation:
    """Bad flag combinations fail with a clear message, never a traceback."""

    def test_unknown_backend_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--backend", "quantum", "list"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'quantum'" in err
        assert "Traceback" not in err

    def test_sanitize_with_reference_backend_is_a_clear_error(self, capsys):
        code = main(
            ["--sanitize", "--backend", "reference", "--scale", "tiny",
             "run", "decomp-arb-CC", "line"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "--sanitize" in err
        assert "Traceback" not in err

    def test_sanitize_clean_run_reports_summary(self, capsys):
        code = main(
            ["--sanitize", "--scale", "tiny", "run", "decomp-arb-CC", "line"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "0 race(s)" in captured.err

    def test_sanitize_detects_injected_cas_flip(self, capsys):
        # Without retries the resilient runner still recovers (clean
        # re-run), but the sanitizer's catch must be visible.
        code = main(
            ["--sanitize", "--scale", "tiny", "run", "decomp-arb-CC", "line",
             "--inject-fault", "cas_flip:p=1.0,round=2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "cas-order" in captured.out

    def test_lint_command_exits_zero_on_clean_tree(self, capsys):
        code, out = run_cli(capsys, "lint")
        assert code == 0
        assert "0 violation(s)" in out

    def test_lint_command_reports_violations_with_exit_one(self, capsys, tmp_path):
        bad = tmp_path / "src" / "repro" / "engine" / "evil.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(labels, idx):\n    labels[idx] = 1\n")
        code, out = run_cli(capsys, "lint", str(bad))
        assert code == 1
        assert "RL001" in out
        assert "evil.py:2:" in out

    def test_lint_broken_config_exits_two(self, capsys, tmp_path):
        cfg = tmp_path / "reprolint.toml"
        cfg.write_text('[[allow]]\nrule = "RL001"\nsite = "a.py::f"\n')
        code = main(["lint", "--config", str(cfg)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "reason" in err


class TestLintFormats:
    def test_explain_prints_rule_documentation(self, capsys):
        code, out = run_cli(capsys, "lint", "--explain", "RL008")
        assert code == 0
        assert "RL008" in out
        assert "finally" in out

    def test_explain_is_case_insensitive(self, capsys):
        code, out = run_cli(capsys, "lint", "--explain", "rl006")
        assert code == 0
        assert "worker" in out.lower()

    def test_explain_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--explain", "RL999"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "RL999" in err

    def test_sarif_output_validates_against_the_schema(self, capsys):
        import json

        code, out = run_cli(capsys, "lint", "--format", "sarif")
        assert code == 0
        log = json.loads(out[: out.rindex("}") + 1])
        assert log["version"] == "2.1.0"
        jsonschema = pytest.importorskip("jsonschema")
        from repro.analysis.reprolint.sarif import TRIMMED_SARIF_SCHEMA

        jsonschema.validate(log, TRIMMED_SARIF_SCHEMA)
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"RL001", "RL006", "RL007", "RL008", "RL009"} <= rule_ids

    def test_sarif_violations_become_results(self, capsys, tmp_path):
        import json

        bad = tmp_path / "src" / "repro" / "engine" / "evil.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(labels, idx):\n    labels[idx] = 1\n")
        sarif_path = tmp_path / "out.sarif"
        code, out = run_cli(
            capsys,
            "lint",
            "--format",
            "sarif",
            "--output",
            str(sarif_path),
            str(bad),
        )
        assert code == 1  # violations still drive the exit code
        log = json.loads(sarif_path.read_text())
        results = log["runs"][0]["results"]
        assert any(r["ruleId"] == "RL001" for r in results)
        hit = next(r for r in results if r["ruleId"] == "RL001")
        region = hit["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert "partialFingerprints" in hit

    def test_no_cache_flag_accepted(self, capsys):
        code, out = run_cli(capsys, "lint", "--no-cache")
        assert code == 0
        assert "0 violation(s)" in out


class TestJsonOutput:
    """``--format json`` must emit a document ``json.loads`` accepts.

    Regression coverage for NumPy scalars leaking to ``json.dump``:
    every payload deliberately carries raw ``np.int64`` values and
    ndarrays before the boundary coercion, so an uncoerced emit crashes
    here rather than in a user's pipeline.
    """

    JSON_COMMANDS = [
        ("run", "decomp-arb-CC", "line", "--seed", "3"),
        ("run", "serial-SF", "3D-grid"),
        ("decompose", "3D-grid", "--beta", "0.3"),
        ("forest", "random"),
    ]

    @pytest.mark.parametrize("argv", JSON_COMMANDS, ids=lambda a: "-".join(a[:2]))
    def test_round_trips_through_json(self, capsys, argv):
        import json

        code, out = run_cli(capsys, "--scale", "tiny", *argv, "--format", "json")
        assert code == 0
        payload = json.loads(out)
        json.dumps(payload)  # native types only: re-dump must not raise
        assert payload["graph"]
        assert payload["scale"] == "tiny"

    def test_decompose_payload_types_are_native(self, capsys):
        import json

        code, out = run_cli(
            capsys, "--scale", "tiny", "decompose", "3D-grid", "--format", "json"
        )
        payload = json.loads(out)
        assert code == 0
        assert isinstance(payload["max_radius"], int)
        assert isinstance(payload["partitions"], int)
        assert isinstance(payload["largest_partitions"], list)
        assert all(isinstance(s, int) for s in payload["largest_partitions"])

    def test_output_writes_file_instead_of_stdout(self, capsys, tmp_path):
        import json

        path = tmp_path / "run.json"
        code, out = run_cli(
            capsys, "--scale", "tiny", "run", "decomp-arb-CC", "line",
            "--format", "json", "--output", str(path),
        )
        assert code == 0
        assert out == ""  # the result went to the file, not stdout
        payload = json.loads(path.read_text())
        assert payload["algorithm"] == "decomp-arb-CC"


class TestTraceSurfaces:
    """The ``trace`` subcommand and the global ``--trace`` flag."""

    def test_trace_command_writes_valid_document(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        path = tmp_path / "run.trace.json"
        code, out = run_cli(
            capsys, "--scale", "tiny", "trace", "rMat", "--output", str(path)
        )
        assert code == 0
        assert "rounds" in out and str(path) in out
        doc = json.loads(path.read_text())
        validate_trace(doc)
        assert doc["meta"]["graph"] == "rMat"
        assert doc["meta"]["algorithm"] == "decomp-arb-CC"
        assert doc["meta"]["work"] > 0
        assert doc["meta"]["phase_work"]
        assert doc["metrics"]["counters"]["runtime.runs"] == 1
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"run", "round"} <= names

    def test_global_trace_flag_wraps_any_command(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        path = tmp_path / "cmd.trace.json"
        code = main(
            ["--scale", "tiny", "--trace", str(path),
             "run", "decomp-arb-CC", "line"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "components : 1" in captured.out
        assert "trace" in captured.err  # the stderr note
        doc = json.loads(path.read_text())
        validate_trace(doc)
        assert doc["meta"]["command"] == "run"
        assert doc["metrics"]["counters"]["runtime.runs"] >= 1


class TestBrokenPipe:
    """``repro ... | head``: exit 1, never a traceback, on EITHER stream.

    Subprocess tests: the pipe's read end is closed before the child
    writes, so the first flush raises ``BrokenPipeError`` — the
    dispatcher must exit 1 without a traceback or the interpreter's
    shutdown-flush ``Exception ignored`` (exit 120).
    """

    def _run_with_closed(self, argv, stream):
        import os
        import subprocess
        import sys as _sys

        code = (
            "import sys\n"
            "from repro.cli import main\n"
            f"sys.exit(main({argv!r}))\n"
        )
        read_fd, write_fd = os.pipe()
        os.close(read_fd)  # no reader: the child's first flush gets EPIPE
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        kwargs = {
            "stdout": write_fd if stream == "stdout" else subprocess.PIPE,
            "stderr": write_fd if stream == "stderr" else subprocess.PIPE,
        }
        proc = subprocess.run(
            [_sys.executable, "-c", code], env=env, timeout=120, **kwargs
        )
        os.close(write_fd)
        other = proc.stderr if stream == "stdout" else proc.stdout
        return proc.returncode, (other or b"").decode()

    def test_list_into_closed_stdout_exits_1(self):
        code, err = self._run_with_closed(["list"], "stdout")
        assert code == 1
        assert "Traceback" not in err
        assert "Exception ignored" not in err

    def test_run_into_closed_stdout_exits_1(self):
        code, err = self._run_with_closed(
            ["--scale", "tiny", "run", "decomp-arb-CC", "line"], "stdout"
        )
        assert code == 1
        assert "Traceback" not in err
        assert "Exception ignored" not in err

    def test_stderr_note_into_closed_stderr_exits_1(self, tmp_path):
        # --sanitize prints its summary to stderr after the command:
        # a closed stderr must follow the same contract as stdout.
        code, out = self._run_with_closed(
            ["--sanitize", "--scale", "tiny", "run", "decomp-arb-CC", "line"],
            "stderr",
        )
        assert code == 1
        assert "Traceback" not in out
        assert "Exception ignored" not in out

    def test_error_path_into_closed_stderr_exits_1(self):
        # ReproError printing "error: ..." to a closed stderr: the
        # nested handler must still exit 1, not crash in the handler.
        code, out = self._run_with_closed(
            ["--scale", "tiny", "table2", "--resume"], "stderr"
        )
        assert code == 1
        assert "Traceback" not in out
