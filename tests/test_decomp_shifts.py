"""Unit and statistical tests for the shift schedule."""

import numpy as np
import pytest

from repro.decomp.shifts import FRAC_BITS, ShiftSchedule
from repro.errors import ParameterError


class TestScheduleBasics:
    @pytest.mark.parametrize("mode", ["permutation", "exponential"])
    def test_order_is_a_permutation(self, mode):
        s = ShiftSchedule(n=500, beta=0.2, seed=1, mode=mode)
        assert np.array_equal(np.sort(s.order), np.arange(500))

    @pytest.mark.parametrize("mode", ["permutation", "exponential"])
    def test_cumulative_monotone_and_reaches_n(self, mode):
        s = ShiftSchedule(n=300, beta=0.3, seed=2, mode=mode)
        cums = [s.cumulative(t) for t in range(s.max_rounds + 5)]
        assert all(a <= b for a, b in zip(cums, cums[1:]))
        assert cums[-1] == 300

    @pytest.mark.parametrize("mode", ["permutation", "exponential"])
    def test_new_candidates_partition_the_order(self, mode):
        s = ShiftSchedule(n=200, beta=0.25, seed=3, mode=mode)
        seen = []
        consumed = 0
        for t in range(s.max_rounds + 2):
            chunk = s.new_candidates(t, consumed)
            consumed = s.cumulative(t)
            seen.extend(chunk.tolist())
        assert sorted(seen) == list(range(200))

    def test_frac_values_in_range(self):
        s = ShiftSchedule(n=1000, beta=0.2, seed=4)
        assert s.frac.min() >= 0
        assert s.frac.max() < (1 << FRAC_BITS)

    def test_frac_mostly_distinct(self):
        # "drawn from a large enough range to guarantee no ties w.h.p."
        s = ShiftSchedule(n=10_000, beta=0.2, seed=5)
        assert np.unique(s.frac).size > 9_990

    def test_n_zero(self):
        s = ShiftSchedule(n=0, beta=0.2, seed=1)
        assert s.cumulative(0) == 0
        assert s.new_candidates(0, 0).size == 0

    def test_n_one(self):
        s = ShiftSchedule(n=1, beta=0.2, seed=1)
        assert s.cumulative(0) == 1

    def test_rejects_bad_beta(self):
        for beta in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ParameterError):
                ShiftSchedule(n=10, beta=beta, seed=1)

    def test_rejects_bad_mode(self):
        with pytest.raises(ParameterError):
            ShiftSchedule(n=10, beta=0.2, seed=1, mode="bogus")

    def test_rejects_negative_round(self):
        s = ShiftSchedule(n=10, beta=0.2, seed=1)
        with pytest.raises(ParameterError):
            s.cumulative(-1)

    def test_deterministic_per_seed(self):
        a = ShiftSchedule(n=100, beta=0.2, seed=7)
        b = ShiftSchedule(n=100, beta=0.2, seed=7)
        assert np.array_equal(a.order, b.order)
        assert a.cumulative(3) == b.cumulative(3)

    def test_seeds_vary_the_schedule(self):
        a = ShiftSchedule(n=100, beta=0.2, seed=7)
        b = ShiftSchedule(n=100, beta=0.2, seed=8)
        assert not np.array_equal(a.order, b.order)


class TestScheduleStatistics:
    def test_rounds_scale_like_log_n_over_beta(self):
        # max start time ~ delta_max ~ ln(n)/beta w.h.p.
        n = 20_000
        for beta in (0.1, 0.4):
            rounds = []
            for seed in range(5):
                s = ShiftSchedule(n=n, beta=beta, seed=seed)
                # first round where everyone is a candidate
                full = next(
                    t for t in range(s.max_rounds + 1) if s.cumulative(t) >= n
                )
                rounds.append(full)
            bound = np.log(n) / beta
            assert np.mean(rounds) < 2.5 * bound
            assert np.mean(rounds) > 0.3 * bound

    def test_chunks_grow_geometrically_in_aggregate(self):
        # the second half of the rounds must contain far more starts
        # than the first half (exponential growth of chunk sizes)
        s = ShiftSchedule(n=50_000, beta=0.2, seed=3)
        full = next(t for t in range(s.max_rounds + 1) if s.cumulative(t) >= s.n)
        half = s.cumulative(full // 2)
        assert half < 0.2 * s.n

    def test_permutation_and_exponential_agree_in_distribution(self):
        # The raw cumulative curves are offset horizontally by the
        # random delta_max of each draw, so compare the offset-free
        # 10%-to-90% ramp width instead: for Exp(beta) order statistics
        # it concentrates around ln(9)/beta regardless of delta_max.
        n = 30_000
        beta = 0.2
        expected = np.log(9.0) / beta

        def ramp(mode: str, seed: int) -> int:
            s = ShiftSchedule(n=n, beta=beta, seed=seed, mode=mode)
            r10 = next(
                t for t in range(s.max_rounds + 1) if s.cumulative(t) >= 0.1 * n
            )
            r90 = next(
                t for t in range(s.max_rounds + 1) if s.cumulative(t) >= 0.9 * n
            )
            return r90 - r10

        for seed in (11, 12, 13):
            for mode in ("permutation", "exponential"):
                width = ramp(mode, seed)
                assert 0.5 * expected < width < 1.8 * expected, (mode, seed, width)
