"""Tests for the extension generators and PBBS AdjacencyGraph I/O."""

import numpy as np
import pytest

from repro.analysis.verify import ground_truth_labels, verify_labeling
from repro.connectivity import decomp_cc
from repro.errors import GraphFormatError, ParameterError
from repro.graphs import (
    preferential_attachment,
    random_kregular,
    read_adjacency_graph,
    small_world,
    write_adjacency_graph,
)


class TestPreferentialAttachment:
    def test_connected(self):
        g = preferential_attachment(500, k=3, seed=1)
        assert np.unique(ground_truth_labels(g)).size == 1

    def test_power_law_hubs(self):
        g = preferential_attachment(2000, k=3, seed=2)
        deg = g.degrees
        assert deg.max() > 8 * deg.mean()

    def test_sizes(self):
        g = preferential_attachment(300, k=2, seed=3)
        assert g.num_vertices == 300
        # each new vertex adds <= k edges
        assert g.num_edges <= 1 + 2 * 298

    def test_min_degree_positive(self):
        g = preferential_attachment(200, k=2, seed=4)
        assert g.degrees.min() >= 1

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            preferential_attachment(1, k=2)
        with pytest.raises(ParameterError):
            preferential_attachment(10, k=0)

    def test_decomp_cc_solves_it(self):
        g = preferential_attachment(800, k=3, seed=5)
        verify_labeling(g, decomp_cc(g, 0.2, seed=1).labels)


class TestSmallWorld:
    def test_sizes_and_regular_base(self):
        g = small_world(100, k=4, p=0.0, seed=1)
        assert g.num_vertices == 100
        assert (g.degrees == 4).all()  # pure ring lattice
        assert np.unique(ground_truth_labels(g)).size == 1

    def test_rewiring_changes_structure(self):
        lattice = small_world(200, k=4, p=0.0, seed=2)
        rewired = small_world(200, k=4, p=0.5, seed=2)
        assert not np.array_equal(lattice.targets, rewired.targets)

    def test_shortcuts_shrink_diameter(self):
        from repro.bfs.parallel_bfs import parallel_bfs

        lattice = small_world(400, k=4, p=0.0, seed=3)
        rewired = small_world(400, k=4, p=0.3, seed=3)
        d0 = parallel_bfs(lattice, 0).distances.max()
        d1 = parallel_bfs(rewired, 0).distances.max()
        assert d1 < d0

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            small_world(3, k=2)
        with pytest.raises(ParameterError):
            small_world(10, k=3)  # odd k
        with pytest.raises(ParameterError):
            small_world(10, k=4, p=1.5)

    def test_decomp_cc_solves_it(self):
        g = small_world(600, k=6, p=0.1, seed=4)
        verify_labeling(g, decomp_cc(g, 0.2, variant="arb-hybrid", seed=1).labels)


class TestAdjacencyGraphIO:
    def test_roundtrip(self, tmp_path):
        g = random_kregular(120, 4, seed=7)
        path = tmp_path / "g.adj"
        write_adjacency_graph(g, path)
        h = read_adjacency_graph(path)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)

    def test_header_line(self, tmp_path):
        g = random_kregular(10, 2, seed=1)
        path = tmp_path / "g.adj"
        write_adjacency_graph(g, path)
        assert path.read_text().splitlines()[0] == "AdjacencyGraph"

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("EdgeList\n1\n0\n0\n")
        with pytest.raises(GraphFormatError, match="header"):
            read_adjacency_graph(path)

    def test_rejects_wrong_counts(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("AdjacencyGraph\n2\n3\n0\n1\n")  # too few values
        with pytest.raises(GraphFormatError, match="expected"):
            read_adjacency_graph(path)

    def test_rejects_garbage_tokens(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("AdjacencyGraph\n1\n1\n0\nxyz\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_adjacency_graph(path)

    def test_handcrafted_file(self, tmp_path):
        # 3 vertices: 0 -> {1, 2}, 1 -> {0}, 2 -> {0}
        path = tmp_path / "tri.adj"
        path.write_text("AdjacencyGraph\n3\n4\n0\n2\n3\n1\n2\n0\n0\n")
        g = read_adjacency_graph(path)
        assert g.num_vertices == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.check_symmetric()
