"""Tests for the experiment registry, harness, tables and figures."""

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    ALGORITHMS,
    GRAPHS,
    PAPER_ALGORITHM_ORDER,
    PAPER_GRAPH_ORDER,
    ascii_series,
    build_graph,
    build_suite,
    fig2_thread_sweep,
    fig3_beta_sweep,
    fig4_edges_remaining,
    fig5_breakdown_min,
    fig6_breakdown_arb,
    fig7_breakdown_hybrid,
    fig8_size_scaling,
    format_table1,
    format_table2,
    get_algorithm,
    median_simulated,
    profile_run,
    run_table1,
    run_table2,
)
from repro.pram.machine import paper_thread_sweep


class TestRegistry:
    def test_all_paper_graphs_registered(self):
        assert set(PAPER_GRAPH_ORDER) <= set(GRAPHS)

    def test_all_paper_algorithms_registered(self):
        assert set(PAPER_ALGORITHM_ORDER) <= set(ALGORITHMS)
        assert len(PAPER_ALGORITHM_ORDER) == 8  # Table 2 rows

    @pytest.mark.parametrize("name", PAPER_GRAPH_ORDER)
    def test_tiny_graphs_build(self, name):
        g = build_graph(name, "tiny")
        assert g.num_vertices > 0

    def test_scales_grow(self):
        tiny = build_graph("random", "tiny")
        small = build_graph("random", "small")
        assert small.num_edges > tiny.num_edges

    def test_unknown_graph(self):
        with pytest.raises(ParameterError):
            build_graph("petersen")

    def test_unknown_scale(self):
        with pytest.raises(ParameterError):
            build_graph("random", "galactic")

    def test_unknown_algorithm(self):
        with pytest.raises(ParameterError):
            get_algorithm("quantum-CC")

    def test_build_suite_subset(self):
        suite = build_suite("tiny", names=["line", "3D-grid"])
        assert list(suite) == ["line", "3D-grid"]

    def test_extras_flagged_not_in_paper(self):
        assert not ALGORITHMS["label-prop-CC"].in_paper
        assert not ALGORITHMS["shiloach-vishkin-CC"].in_paper
        assert ALGORITHMS["serial-SF"].in_paper


class TestHarness:
    @pytest.fixture(scope="class")
    def tiny_line(self):
        return build_graph("line", "tiny")

    def test_profile_run_verifies(self, tiny_line):
        prof = profile_run("serial-SF", tiny_line, graph_name="line")
        assert prof.wall_seconds > 0
        assert prof.result.num_components == 1

    def test_profile_run_decomp_kwargs(self, tiny_line):
        prof = profile_run(
            "decomp-arb-CC", tiny_line, beta=0.1, seed=3, graph_name="line"
        )
        assert prof.result.stats["beta"] == 0.1

    def test_seconds_at_one_thread_exceeds_40h(self, tiny_line):
        prof = profile_run("decomp-arb-CC", tiny_line, beta=0.2, seed=1)
        assert prof.seconds_at(1) > prof.seconds_at("40h")

    def test_sweep_covers_paper_thread_labels(self, tiny_line):
        prof = profile_run("decomp-arb-CC", tiny_line, beta=0.2, seed=1)
        sweep = prof.sweep()
        assert list(sweep) == [
            str(s) if not isinstance(s, str) else s for s in paper_thread_sweep()
        ]

    def test_phase_seconds(self, tiny_line):
        prof = profile_run("decomp-min-CC", tiny_line, beta=0.2, seed=1)
        phases = prof.phase_seconds_at("40h")
        assert "bfsPhase1" in phases and "bfsPhase2" in phases

    def test_median_simulated_runs(self, tiny_line):
        t = median_simulated("decomp-arb-CC", tiny_line, "40h", trials=3, beta=0.2)
        assert t > 0.0

    def test_median_simulated_deterministic_algo_single_run(self, tiny_line):
        t = median_simulated("serial-SF", tiny_line, 1)
        assert t > 0.0


class TestTables:
    def test_table1_rows(self):
        rows = run_table1("tiny", names=["line", "random"])
        assert rows[0]["graph"] == "line"
        assert rows[1]["num_edges"] > 0
        text = format_table1(rows)
        assert "line" in text and "random" in text

    def test_table2_structure_and_render(self):
        suite = build_suite("tiny", names=["line", "3D-grid"])
        table = run_table2(graphs=suite, algorithms=["serial-SF", "decomp-arb-CC"])
        assert set(table) == {"serial-SF", "decomp-arb-CC"}
        assert set(table["serial-SF"]) == {"line", "3D-grid"}
        cell = table["decomp-arb-CC"]["line"]
        assert cell["1"] > cell["40h"] > 0
        text = format_table2(table)
        assert "Implementation" in text and "(40h)" in text


class TestFigures:
    @pytest.fixture(scope="class")
    def tiny_grid(self):
        return build_graph("3D-grid", "tiny")

    def test_fig2_series(self, tiny_grid):
        series = fig2_thread_sweep(
            tiny_grid, "3D-grid", algorithms=["serial-SF", "decomp-arb-CC"]
        )
        assert set(series) == {"serial-SF", "decomp-arb-CC"}
        # serial-SF is flat; decomp scales
        sf = list(series["serial-SF"].values())
        assert max(sf) == pytest.approx(min(sf))
        arb = series["decomp-arb-CC"]
        assert arb["1"] > arb["40h"]

    def test_fig3_series(self, tiny_grid):
        out = fig3_beta_sweep(tiny_grid, "3D-grid", betas=[0.1, 0.5])
        assert set(out) == {
            "decomp-arb-CC",
            "decomp-arb-hybrid-CC",
            "decomp-min-CC",
        }
        assert set(out["decomp-arb-CC"]) == {0.1, 0.5}

    def test_fig4_series_monotone(self, tiny_grid):
        out = fig4_edges_remaining(tiny_grid, "3D-grid", betas=[0.2])
        series = out[0.2]
        assert series[0] == tiny_grid.num_edges
        assert all(a > b for a, b in zip(series, series[1:]))

    def test_fig4_line_uses_small_betas(self):
        g = build_graph("line", "tiny")
        out = fig4_edges_remaining(g, "line")
        assert min(out) < 0.01  # the paper's line panel starts at 0.003

    def test_fig5_phases(self):
        out = fig5_breakdown_min(graphs=["line"], scale="tiny")
        assert set(out) == {"line"}
        phases = out["line"]
        assert {"init", "bfsPre", "bfsPhase1", "bfsPhase2", "contractGraph"} <= set(
            phases
        )
        assert phases["bfsPhase1"] > 0

    def test_fig6_phases(self):
        out = fig6_breakdown_arb(graphs=["line"], scale="tiny")
        assert "bfsMain" in out["line"]
        assert out["line"]["bfsMain"] > 0

    def test_fig7_phases_line_never_dense(self):
        # the paper's claim holds at benchmark scale for the top-level
        # decompositions; deep recursion levels (a few hundred
        # contracted vertices) may fire a dense round whose time is
        # invisible, as in the paper's bars
        out = fig7_breakdown_hybrid(graphs=["line"], scale="small")
        total = sum(out["line"].values())
        assert out["line"]["bfsDense"] < 0.01 * total
        assert out["line"]["bfsSparse"] > 0.25 * total

    def test_fig8_near_linear_scaling(self):
        out = fig8_size_scaling(edge_counts=[20_000, 40_000, 80_000])
        sizes = sorted(out)
        times = [out[s] for s in sizes]
        assert times[0] < times[-1]
        # near-linear: quadrupling m should stay well under 8x time
        assert times[-1] / times[0] < 8.0

    def test_ascii_series_renders(self):
        text = ascii_series({"algo": {"1": 1.0, "2": 0.5}})
        assert "algo:" in text and "#" in text
