"""Tests for the ResilientRunner: retry, gating, degradation, logging."""

import pytest

from repro.errors import ResilienceExhaustedError, VerificationError
from repro.graphs import line_graph
from repro.resilience import (
    FaultPlan,
    ResilientRunner,
    RetryPolicy,
    parse_fault_plan,
)


@pytest.fixture
def path_graph():
    return line_graph(200)


def one_shot_fault():
    """A plan that corrupts exactly the first run, then goes inert.

    Dropping both endpoints of the cut edge (10, 11) of a path ensures
    neither side ever classifies the edge, so the labeling splits the
    component — always detected by verification.
    """
    return parse_fault_plan("drop_frontier:vertices=10|11", seed=0, sabotage_runs=1)


def persistent_fault():
    return parse_fault_plan(
        "drop_frontier:vertices=10|11,max_fires=1000000",
        seed=0,
        sabotage_runs=10**9,
    )


class TestRetryRecovery:
    def test_retry_recovers_from_one_shot_fault(self, path_graph):
        runner = ResilientRunner(fault_plan=one_shot_fault())
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=1
        )
        assert outcome.attempts == 2
        assert not outcome.degraded
        assert outcome.algorithm == "decomp-arb-CC"
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.error_type == "VerificationError"
        assert failure.reason == "crossing-edge"
        assert failure.action == "retry"
        assert runner.failure_log == outcome.failures

    def test_retry_rotates_seed(self, path_graph):
        runner = ResilientRunner(
            retry=RetryPolicy(seed_stride=1000), fault_plan=one_shot_fault()
        )
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=5
        )
        assert outcome.failures[0].seed == 5  # first attempt keeps base seed
        # The winning attempt ran under seed 1005; its result verifies.
        assert outcome.profile.result.num_components == 1

    def test_backoff_charged_to_winning_profile(self, path_graph):
        policy = RetryPolicy(backoff_base=512.0, backoff_factor=2.0)
        runner = ResilientRunner(retry=policy, fault_plan=one_shot_fault())
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=1
        )
        by_phase = outcome.profile.tracker.work_by_phase()
        assert by_phase.get("resilience") == pytest.approx(512.0)

    def test_clean_run_charges_no_backoff(self, path_graph):
        runner = ResilientRunner()
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=1
        )
        assert outcome.attempts == 1
        assert outcome.failures == []
        assert "resilience" not in outcome.profile.tracker.work_by_phase()

    def test_verification_gating_can_be_disabled(self, path_graph):
        # Without gating the corrupted first attempt is accepted as-is:
        # the labeling completes, it is just wrong.
        runner = ResilientRunner(verify=False, fault_plan=one_shot_fault())
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=1
        )
        assert outcome.attempts == 1
        with pytest.raises(VerificationError):
            from repro.analysis.verify import verify_labeling

            verify_labeling(path_graph, outcome.profile.result.labels)


class TestGracefulDegradation:
    def test_persistent_fault_degrades_to_serial_sf(self, path_graph):
        # The fault plan corrupts every decomp attempt; serial-SF has no
        # frontier to drop, so the chain bottoms out there.
        runner = ResilientRunner(
            retry=RetryPolicy(max_attempts=2), fault_plan=persistent_fault()
        )
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=1
        )
        assert outcome.degraded
        assert outcome.requested == "decomp-arb-CC"
        assert outcome.algorithm == "serial-SF"
        # 2 attempts for decomp-arb-CC, 2 for decomp-min-CC, 1 winning.
        assert outcome.attempts == 5
        actions = [f.action for f in outcome.failures]
        assert actions == ["retry", "fallback", "retry", "fallback"]

    def test_exhaustion_raises_with_failure_log(self, path_graph):
        runner = ResilientRunner(
            retry=RetryPolicy(max_attempts=2),
            fallbacks={},  # no degradation allowed
            fault_plan=persistent_fault(),
        )
        with pytest.raises(ResilienceExhaustedError) as excinfo:
            runner.run_cell("decomp-arb-CC", path_graph, graph_name="line", seed=1)
        err = excinfo.value
        assert len(err.failures) == 2
        assert err.failures[-1].action == "gave-up"
        assert runner.failure_log == err.failures

    def test_custom_fallback_chain(self, path_graph):
        runner = ResilientRunner(
            retry=RetryPolicy(max_attempts=1),
            fallbacks={"decomp-arb-CC": ["multistep-CC"]},
            fault_plan=persistent_fault(),
        )
        outcome = runner.run_cell(
            "decomp-arb-CC", path_graph, graph_name="line", seed=1
        )
        assert outcome.algorithm == "multistep-CC"


class TestSweepIntegration:
    def test_table2_records_attempts_and_failures(self):
        graphs = {"line": line_graph(150)}
        runner = ResilientRunner(fault_plan=one_shot_fault())
        sweep = runner.run_table2(
            graphs=graphs, algorithms=["decomp-arb-CC", "serial-SF"], seed=1
        )
        cell = sweep["table"]["decomp-arb-CC"]["line"]
        assert cell["attempts"] == 2
        assert cell["algorithm"] == "decomp-arb-CC"
        assert len(cell["failures"]) == 1
        assert sweep["attempts"]["decomp-arb-CC"]["line"] == 2
        assert sweep["resolved"]["decomp-arb-CC"]["line"] == "decomp-arb-CC"
        # serial-SF ran clean (the plan was used up by the first cell).
        assert sweep["attempts"]["serial-SF"]["line"] == 1
        assert len(sweep["failures"]) == 1

    def test_export_resilient_table2(self, tmp_path):
        import json

        from repro.experiments import export_resilient_table2

        graphs = {"line": line_graph(120)}
        runner = ResilientRunner(
            retry=RetryPolicy(max_attempts=1), fault_plan=persistent_fault()
        )
        sweep = runner.run_table2(
            graphs=graphs, algorithms=["decomp-arb-CC"], seed=1
        )
        out = tmp_path / "sweep.json"
        export_resilient_table2(sweep, out)
        data = json.loads(out.read_text())
        assert data["degraded_cells"] == {"decomp-arb-CC/line": "serial-SF"}
        assert data["total_failures"] == 2
        assert data["failures"][0]["error_type"] == "VerificationError"
        assert "decomp-arb-CC" in data["table"]


class TestFaultPlanArming:
    def test_plan_is_inert_outside_activation(self, path_graph):
        from repro.resilience import active_fault_plan

        plan = one_shot_fault()
        assert active_fault_plan() is None
        with plan.activate() as active:
            assert active_fault_plan() is active
            assert plan.armed
        assert active_fault_plan() is None

    def test_sabotage_budget_expires(self):
        plan = FaultPlan.parse("cas_flip", sabotage_runs=2)
        for expect_armed in (True, True, False, False):
            with plan.activate():
                assert plan.armed is expect_armed
