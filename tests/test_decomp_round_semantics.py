"""Surgical tests of the round kernels' CRCW semantics.

These pin down the *exact* behavioural difference between Algorithm 2
and Algorithm 3 on hand-built race scenarios: two BFS centers reaching
the same unvisited vertex in the same round.

* Decomp-Min: the center with the smaller fractional shift delta' must
  win the writeMin — deterministically, whatever the edge order.
* Decomp-Arb: some single center wins (we don't prescribe which), the
  loser records an inter-component edge, and the winner's claiming
  edge is deleted.
"""

import numpy as np
import pytest

from repro.decomp.base import DecompState
from repro.decomp.decomp_arb import arb_round
from repro.decomp.decomp_min import _PAIR_INF, min_round
from repro.graphs.builder import from_edges
from repro.pram.cost import tracking


def race_graph():
    """A path a - w - b: centers at a=0 and b=2 race for w=1."""
    return from_edges(np.array([0, 1]), np.array([1, 2]), num_vertices=3)


def prepared_state(graph, beta=0.2, seed=1):
    """A DecompState with vertices 0 and 2 already centers, frontier set."""
    state = DecompState(graph, beta, seed, "permutation")
    state.C[0] = 0
    state.C[2] = 2
    state.visited = 2
    state.frontier = np.array([0, 2], dtype=np.int64)
    return state


class TestMinRoundSemantics:
    @pytest.mark.parametrize("winner", [0, 2])
    def test_smaller_frac_wins_the_writemin(self, winner):
        graph = race_graph()
        state = prepared_state(graph)
        loser = 2 - winner
        # rig the tie-break draws: winner's delta' strictly smaller
        state.schedule.frac = np.zeros(3, dtype=np.int64)
        state.schedule.frac[winner] = 10
        state.schedule.frac[loser] = 20
        pair = np.full(3, _PAIR_INF, dtype=np.int64)
        with tracking():
            next_frontier = min_round(state, pair)
        assert state.C[1] == winner
        assert next_frontier.tolist() == [1]
        # exactly the loser's edge to w survives as inter (plus nothing
        # else: a-w and b-w are the only edges and the winner's is intra)
        assert state.visited == 3

    def test_equal_frac_ties_break_by_smaller_center(self):
        graph = race_graph()
        state = prepared_state(graph)
        state.schedule.frac = np.full(3, 7, dtype=np.int64)
        pair = np.full(3, _PAIR_INF, dtype=np.int64)
        with tracking():
            min_round(state, pair)
        assert state.C[1] == 0  # encoded pair breaks ties by center id

    def test_loser_edge_recorded_as_inter(self):
        graph = race_graph()
        state = prepared_state(graph)
        state.schedule.frac = np.array([5, 0, 9], dtype=np.int64)
        pair = np.full(3, _PAIR_INF, dtype=np.int64)
        with tracking():
            min_round(state, pair)
        dec = state.finish()
        # w joined center 0; the (2, w) direction is inter: labels (2, 0)
        pairs = set(zip(dec.inter_src.tolist(), dec.inter_dst.tolist()))
        assert (2, 0) in pairs

    def test_visited_neighbor_classified_in_phase_one(self):
        # triangle 0-1-2 with all three vertices already in different
        # components: every edge must come out inter, no new frontier
        graph = from_edges(np.array([0, 1, 2]), np.array([1, 2, 0]))
        state = DecompState(graph, 0.2, 1, "permutation")
        state.C[:] = np.array([0, 1, 2])
        state.visited = 3
        state.frontier = np.array([0, 1, 2], dtype=np.int64)
        pair = np.full(3, _PAIR_INF, dtype=np.int64)
        with tracking():
            next_frontier = min_round(state, pair)
        assert next_frontier.size == 0
        dec = state.finish()
        assert dec.num_inter_directed == 6  # all directed edges survive


class TestArbRoundSemantics:
    def test_single_winner_and_loser_inter_edge(self):
        graph = race_graph()
        state = prepared_state(graph)
        with tracking():
            next_frontier = arb_round(state)
        w_comp = int(state.C[1])
        assert w_comp in (0, 2)
        assert next_frontier.tolist() == [1]
        dec = state.finish()
        pairs = set(zip(dec.inter_src.tolist(), dec.inter_dst.tolist()))
        loser = 2 - w_comp
        assert (loser, w_comp) in pairs
        # the winner's claiming edge was deleted (intra): only 1 pair
        assert len(dec.inter_src) == 1

    def test_same_component_double_visit_not_inter(self):
        # square 0-1, 0-3, 2-1, 2-3 with 0, 2 in the SAME component:
        # both claim a neighbor; no inter edges can appear
        graph = from_edges(np.array([0, 0, 2, 2]), np.array([1, 3, 1, 3]))
        state = DecompState(graph, 0.2, 1, "permutation")
        state.C[0] = 0
        state.C[2] = 0  # same component, two frontier vertices
        state.visited = 2
        state.frontier = np.array([0, 2], dtype=np.int64)
        with tracking():
            next_frontier = arb_round(state)
        assert sorted(next_frontier.tolist()) == [1, 3]
        dec = state.finish()
        assert dec.num_inter_directed == 0

    def test_arb_ignores_frac_values(self):
        # with rigged frac favouring center 2, arb's winner is decided
        # by edge order, not frac: the outcome must be identical when
        # frac values are swapped
        def run(frac):
            graph = race_graph()
            state = prepared_state(graph)
            state.schedule.frac = np.array(frac, dtype=np.int64)
            with tracking():
                arb_round(state)
            return int(state.C[1])

        assert run([0, 0, 99]) == run([99, 0, 0])


class TestRoundEdgeConservation:
    @pytest.mark.parametrize("kernel", ["min", "arb"])
    def test_every_frontier_edge_accounted(self, kernel):
        """intra(deleted) + inter(kept) must cover every expanded edge."""
        rng = np.random.default_rng(5)
        graph = from_edges(
            rng.integers(0, 30, size=80), rng.integers(0, 30, size=80),
            num_vertices=30,
        )
        state = DecompState(graph, 0.3, 2, "permutation")
        # seed three centers
        for c in (0, 7, 13):
            state.C[c] = c
        state.visited = 3
        state.frontier = np.array([0, 7, 13], dtype=np.int64)
        frontier_edges = int(
            (graph.offsets[state.frontier + 1] - graph.offsets[state.frontier]).sum()
        )
        with tracking():
            if kernel == "min":
                pair = np.full(30, _PAIR_INF, dtype=np.int64)
                winners = min_round(state, pair)
            else:
                winners = arb_round(state)
        dec = state.finish()
        # each expanded edge is either inter (recorded) or intra
        # (dropped); the claims equal the number of new vertices
        assert dec.num_inter_directed <= frontier_edges
        assert winners.size == state.visited - 3
