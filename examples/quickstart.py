#!/usr/bin/env python
"""Quickstart: find connected components with the paper's algorithm.

Builds a random graph, runs the decomposition-based connectivity
algorithm (Algorithm 1 with Decomp-Arb), verifies the labeling, and
shows the simulated-machine timing workflow that powers the paper's
experiments.

Run:  python examples/quickstart.py
"""

from repro.analysis import verify_labeling
from repro.connectivity import decomp_cc, serial_sf_cc
from repro.graphs import random_kregular
from repro.pram import PAPER_MACHINE, MachineModel, tracking


def main() -> None:
    # 1. A graph: 50,000 vertices, 5 random edges each (the paper's
    #    "random" input, scaled down).
    graph = random_kregular(50_000, k=5, seed=42)
    print(f"graph: {graph}")

    # 2. Connected components via the paper's linear-work algorithm.
    #    variant="arb" is Algorithm 3 (arbitrary tie-breaking); try
    #    "min" (Algorithm 2) or "arb-hybrid" (direction-optimizing).
    result = decomp_cc(graph, beta=0.2, variant="arb", seed=1)
    print(f"components: {result.num_components}")
    print(f"CC iterations (DECOMP+CONTRACT rounds): {result.iterations}")
    print(f"edges entering each iteration: {result.edges_per_iteration}")

    # 3. Verify against ground truth (BFS-based sequential reference).
    verify_labeling(graph, result.labels)
    print("labeling verified: OK")

    # 4. Simulated-machine timing: run under a cost tracker, then ask a
    #    MachineModel how long the recorded work/depth profile takes.
    with tracking() as profile:
        decomp_cc(graph, beta=0.2, variant="arb", seed=1)
    t1 = MachineModel(threads=1).time_seconds(profile)
    t40h = PAPER_MACHINE.time_seconds(profile)  # 40 cores + hyper-threading
    print(f"simulated time, 1 thread : {t1 * 1e3:8.3f} ms")
    print(f"simulated time, 40h      : {t40h * 1e3:8.3f} ms")
    print(f"self-relative speedup    : {t1 / t40h:8.1f}x  (paper band: 18-39x)")

    # 5. Compare with the sequential union-find baseline.
    with tracking() as sf_profile:
        serial_sf_cc(graph)
    t_sf = MachineModel(threads=1).time_seconds(sf_profile)
    print(f"serial-SF (1 thread)     : {t_sf * 1e3:8.3f} ms")
    print(f"decomp-arb-CC at 40h is {t_sf / t40h:.1f}x faster than serial-SF")


if __name__ == "__main__":
    main()
