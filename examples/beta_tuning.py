#!/usr/bin/env python
"""Tuning the decomposition parameter beta (the paper's Figure 3/4 story).

beta trades partition diameter against partition count: small beta
means few, deep BFS balls (more rounds per decomposition, fewer
recursion levels); large beta means many shallow balls (cheap rounds,
more surviving inter-component edges, more recursion levels).  The
paper finds the sweet spot between 0.05 and 0.2.

This example sweeps beta on two structurally opposite graphs — the
diameter-adversary line and a low-diameter random graph — showing the
simulated 40-core time, the decomposition quality (inter-edge fraction
vs the 2*beta bound), and the edge-decay series.

Run:  python examples/beta_tuning.py
"""

from repro.analysis import decomposition_stats
from repro.connectivity import decomp_cc
from repro.decomp import decomp_arb
from repro.graphs import line_graph, random_kregular
from repro.pram import PAPER_MACHINE, tracking

BETAS = [0.02, 0.05, 0.1, 0.2, 0.4, 0.8]


def sweep(graph, name: str) -> None:
    print(f"\n=== {name}: {graph}")
    print(f"{'beta':>6} {'T(40h) ms':>10} {'iters':>6} "
          f"{'cut frac':>9} {'2b bound':>9} {'max radius':>10}")
    for beta in BETAS:
        with tracking() as profile:
            result = decomp_cc(graph, beta=beta, variant="arb", seed=3)
        seconds = PAPER_MACHINE.time_seconds(profile)
        # quality of the first-level decomposition alone
        dec = decomp_arb(graph, beta=beta, seed=3)
        stats = decomposition_stats(graph, dec, beta=beta, variant="arb")
        print(
            f"{beta:>6} {seconds * 1e3:>10.3f} {result.iterations:>6} "
            f"{stats.inter_edge_fraction:>9.4f} "
            f"{stats.theoretical_fraction_bound:>9.2f} "
            f"{stats.max_radius:>10}"
        )


def main() -> None:
    sweep(line_graph(30_000, seed=1), "line (diameter adversary)")
    sweep(random_kregular(60_000, 5, seed=1), "random (low diameter)")
    print(
        "\nReading: the cut fraction always respects the 2*beta bound "
        "(Theorem 2);\nsmall beta costs deep balls (radius ~ log n / "
        "beta) but fewer CC iterations;\nthe best total time sits at "
        "small-to-moderate beta, as in the paper's Figure 3."
    )


if __name__ == "__main__":
    main()
