#!/usr/bin/env python
"""Social-network component analysis (the paper's com-Orkut scenario).

Community-scale graphs are the regime where algorithm choice matters
most: on a dense, low-diameter social network the direction-optimizing
BFS baselines shine, while the decomposition algorithm provides the
same answer with worst-case guarantees.  This example runs both on the
com-Orkut surrogate, compares their simulated 40-core times, and then
uses the component structure for a simple analysis: finding isolated
users and community cores after removing the weakest ties.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.analysis import labelings_equivalent
from repro.connectivity import decomp_cc, hybrid_bfs_cc, multistep_cc
from repro.graphs import from_edges, orkut_like
from repro.graphs.ops import edges_as_undirected_pairs
from repro.pram import PAPER_MACHINE, tracking


def timed(fn, *args, **kwargs):
    with tracking() as profile:
        result = fn(*args, **kwargs)
    return result, PAPER_MACHINE.time_seconds(profile)


def main() -> None:
    network = orkut_like(20_000, avg_degree=40.0, seed=11)
    print(f"network: {network}  (com-Orkut surrogate, DESIGN.md §2)")

    # --- who finds the components fastest on this graph shape? -------
    runs = {
        "decomp-arb-hybrid-CC": lambda: decomp_cc(
            network, beta=0.2, variant="arb-hybrid", seed=1
        ),
        "hybrid-BFS-CC": lambda: hybrid_bfs_cc(network),
        "multistep-CC": lambda: multistep_cc(network),
    }
    results = {}
    print("\nsimulated 40-core times (the paper's com-Orkut column shape):")
    for name, fn in runs.items():
        result, seconds = timed(fn)
        results[name] = result
        print(f"  {name:22s} {seconds * 1e3:8.3f} ms "
              f"({result.num_components} components)")
    assert labelings_equivalent(
        results["decomp-arb-hybrid-CC"].labels, results["hybrid-BFS-CC"].labels
    )

    # --- community structure after removing weak ties ----------------
    # Model tie strength by co-degree: drop edges between two low-degree
    # users, then see how the giant component shatters.
    deg = network.degrees
    src, dst = edges_as_undirected_pairs(network)
    strong = (deg[src] + deg[dst]) >= np.quantile(deg[src] + deg[dst], 0.6)
    core_graph = from_edges(src[strong], dst[strong], num_vertices=network.num_vertices)
    core = decomp_cc(core_graph, beta=0.2, variant="arb-hybrid", seed=2)
    sizes = core.component_sizes()
    isolated = int((sizes == 1).sum())
    print("\nafter dropping the weakest 60% of ties:")
    print(f"  components: {core.num_components}")
    print(f"  giant core: {sizes[0]} users "
          f"({100.0 * sizes[0] / network.num_vertices:.1f}%)")
    print(f"  isolated users: {isolated}")
    print(f"  mid-size communities (>=5 users): "
          f"{int(((sizes >= 5) & (sizes < sizes[0])).sum())}")


if __name__ == "__main__":
    main()
