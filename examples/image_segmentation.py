#!/usr/bin/env python
"""Connected-component labeling for image analysis.

The paper's introduction motivates connectivity with "image analysis
for computer vision": segmenting a binary image means labeling the
connected components of its pixel-adjacency graph.  This example
synthesizes a binary image of random blobs, builds the 4-neighbor
adjacency graph over foreground pixels, labels components with
decomp-arb-hybrid-CC, and reports the segments — then cross-checks
with the sequential baseline.

Run:  python examples/image_segmentation.py
"""

import numpy as np

from repro.analysis import labelings_equivalent
from repro.connectivity import decomp_cc, serial_sf_cc
from repro.graphs import from_edges


def synthesize_blobs(height: int, width: int, num_blobs: int, seed: int) -> np.ndarray:
    """A binary image: random axis-aligned elliptical blobs on black."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    image = np.zeros((height, width), dtype=bool)
    for _ in range(num_blobs):
        cy, cx = rng.integers(0, height), rng.integers(0, width)
        ry = rng.integers(3, max(4, height // 8))
        rx = rng.integers(3, max(4, width // 8))
        image |= ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
    return image


def pixel_adjacency_graph(image: np.ndarray):
    """4-neighbor graph over foreground pixels, with compacted ids.

    Returns (graph, pixel_id) where pixel_id maps (row, col) of each
    foreground pixel to its graph vertex (-1 for background).
    """
    height, width = image.shape
    pixel_id = np.full(image.shape, -1, dtype=np.int64)
    fg = np.flatnonzero(image.ravel())
    pixel_id.ravel()[fg] = np.arange(fg.size)

    flat = pixel_id.ravel()
    idx = np.arange(height * width).reshape(image.shape)
    edges_src, edges_dst = [], []
    # right neighbors
    both = image[:, :-1] & image[:, 1:]
    edges_src.append(flat[idx[:, :-1][both]])
    edges_dst.append(flat[idx[:, 1:][both]])
    # down neighbors
    both = image[:-1, :] & image[1:, :]
    edges_src.append(flat[idx[:-1, :][both]])
    edges_dst.append(flat[idx[1:, :][both]])
    graph = from_edges(
        np.concatenate(edges_src), np.concatenate(edges_dst), num_vertices=fg.size
    )
    return graph, pixel_id


def render_ascii(image: np.ndarray, labels_2d: np.ndarray, max_rows: int = 24) -> str:
    """Tiny terminal rendering: one glyph per segment."""
    glyphs = ".0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    step = max(1, image.shape[0] // max_rows)
    rows = []
    for r in range(0, image.shape[0], step):
        row = ""
        for c in range(0, image.shape[1], 2 * step):
            if not image[r, c]:
                row += " "
            else:
                row += glyphs[1 + labels_2d[r, c] % (len(glyphs) - 1)]
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    image = synthesize_blobs(120, 240, num_blobs=14, seed=7)
    print(f"image: {image.shape[0]}x{image.shape[1]}, "
          f"{int(image.sum())} foreground pixels")

    graph, pixel_id = pixel_adjacency_graph(image)
    print(f"pixel adjacency graph: {graph}")

    result = decomp_cc(graph, beta=0.2, variant="arb-hybrid", seed=3)
    print(f"segments found: {result.num_components}")
    sizes = result.component_sizes()
    print(f"largest segments (pixels): {sizes[:8].tolist()}")

    # cross-check against the sequential baseline
    reference = serial_sf_cc(graph)
    assert labelings_equivalent(result.labels, reference.labels)
    print("matches serial-SF: OK")

    # paint labels back onto the image and draw it
    labels_2d = np.zeros(image.shape, dtype=np.int64)
    labels_2d[image] = result.labels[pixel_id[image]]
    print(render_ascii(image, labels_2d))


if __name__ == "__main__":
    main()
