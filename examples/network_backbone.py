#!/usr/bin/env python
"""Spanning-forest extraction: the minimal backbone of a network.

The paper (footnote 1) notes the equivalence between spanning forests
and connected components; this library implements both directions.  A
spanning forest is the minimal edge set preserving reachability — the
"backbone" question in infrastructure planning: of all the redundant
links in a mesh, which n - c must stay so nothing disconnects?

This example builds a redundant mesh (a small-world network: local
rings plus shortcuts), extracts a spanning forest with the linear-work
decomposition algorithm, verifies it, and quantifies the redundancy
removed.

Run:  python examples/network_backbone.py
"""

import numpy as np

from repro.connectivity import (
    decomp_cc,
    decomp_spanning_forest,
    verify_spanning_forest,
)
from repro.graphs import small_world
from repro.pram import PAPER_MACHINE, tracking


def main() -> None:
    # A redundant mesh: every node in a local ring of degree 6, with
    # 10% of links rewired into long-range shortcuts.
    mesh = small_world(20_000, k=6, p=0.1, seed=5)
    print(f"mesh network : {mesh}")

    with tracking() as profile:
        src, dst = decomp_spanning_forest(mesh, beta=0.2, variant="arb", seed=1)
    verify_spanning_forest(mesh, src, dst)
    seconds = PAPER_MACHINE.time_seconds(profile)

    components = decomp_cc(mesh, beta=0.2, seed=1).num_components
    print(f"components   : {components}")
    print(f"backbone     : {src.size} links "
          f"(= n - c = {mesh.num_vertices - components})")
    removed = mesh.num_edges - src.size
    print(f"redundancy   : {removed} links removable "
          f"({100.0 * removed / mesh.num_edges:.1f}% of the mesh)")
    print(f"simulated T(40h): {seconds * 1e3:.3f} ms")

    # Which nodes carry the backbone? Degree distribution of the forest.
    forest_degree = np.bincount(
        np.concatenate((src, dst)), minlength=mesh.num_vertices
    )
    print(f"backbone degree: max {forest_degree.max()}, "
          f"mean {forest_degree.mean():.2f} "
          f"(tree invariant: mean = 2(n-c)/n)")
    print("verified     : spans the mesh, acyclic, links are real")


if __name__ == "__main__":
    main()
