#!/usr/bin/env python
"""Algorithm shoot-out: when does each connectivity algorithm win?

Reproduces the paper's core experimental narrative in miniature: run
all eight Table 2 implementations (plus the two classical extras) on
three adversarially different graphs and print the simulated 1-thread
and 40-core times side by side.

* dense low-diameter social graph -> direction-optimizing BFS wins;
* sparse many-component rMat     -> multistep / decomp win,
  hybrid-BFS-CC stumbles (components visited one-by-one);
* the line                        -> only the decomposition algorithms
  keep polylog depth; BFS-based baselines flat-line.

Run:  python examples/algorithm_shootout.py
"""

from repro.experiments import ALGORITHMS, build_graph, profile_run

GRAPHS = {
    "com-Orkut (dense, 1 component)": build_graph("com-Orkut", "tiny"),
    "rMat (sparse, many components)": build_graph("rMat", "small"),
    "line (diameter n-1)": build_graph("line", "small"),
}

ORDER = [
    "serial-SF",
    "decomp-arb-CC",
    "decomp-arb-hybrid-CC",
    "decomp-min-CC",
    "parallel-SF-PBBS",
    "parallel-SF-PRM",
    "hybrid-BFS-CC",
    "multistep-CC",
    "label-prop-CC",
    "shiloach-vishkin-CC",
]


def main() -> None:
    for gname, graph in GRAPHS.items():
        print(f"\n=== {gname}: {graph}")
        hdr = f"{'implementation':<22} {'T(1) ms':>10} {'T(40h) ms':>10} {'speedup':>8}"
        print(hdr)
        rows = []
        for algo in ORDER:
            kwargs = {"beta": 0.2, "seed": 1} if algo.startswith("decomp-") else {}
            prof = profile_run(algo, graph, graph_name=gname, verify=True, **kwargs)
            t1 = prof.seconds_at(1) * 1e3
            t40 = prof.seconds_at("40h") * 1e3
            rows.append((algo, t1, t40))
            note = " (in paper's Table 2)" if ALGORITHMS[algo].in_paper else ""
            print(f"{algo:<22} {t1:>10.3f} {t40:>10.3f} {t1 / t40:>7.1f}x{note}")
        winner = min(rows, key=lambda r: r[2])
        print(f"--> fastest at 40h: {winner[0]}")


if __name__ == "__main__":
    main()
